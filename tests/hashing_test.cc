// Tests for hashing/: XXH64 reference vectors, mixer bijectivity and
// avalanche, k-wise polynomial hashing, and tabulation hashing.

#include <cstdint>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "hashing/hash.h"
#include "hashing/poly_hash.h"
#include "hashing/tabulation.h"
#include "util/random.h"

namespace dsketch {
namespace {

TEST(Xxh64Test, EmptyStringGoldenValue) {
  // Reference vector from the xxHash specification.
  EXPECT_EQ(XXH64("", 0), 0xEF46DB3751D8E999ULL);
}

TEST(Xxh64Test, SpammishRepetitionGoldenValue) {
  // Reference vector used in the xxhash documentation.
  EXPECT_EQ(XXH64("Nobody inspects the spammish repetition", 0),
            0xFBCEA83C8A378BF1ULL);
}

TEST(Xxh64Test, SeedChangesOutput) {
  EXPECT_NE(XXH64("abc", 0), XXH64("abc", 1));
}

TEST(Xxh64Test, AllInputLengthsDiffer) {
  // Exercise every tail-handling branch (0..64 bytes).
  std::string s;
  std::set<uint64_t> seen;
  for (int len = 0; len <= 64; ++len) {
    seen.insert(XXH64(s, 7));
    s.push_back(static_cast<char>('a' + (len % 26)));
  }
  EXPECT_EQ(seen.size(), 65u);
}

TEST(Mix64Test, IsBijectiveOnSample) {
  // A bijection cannot collide; check a large pseudo-random sample.
  std::set<uint64_t> outputs;
  uint64_t x = 1;
  for (int i = 0; i < 100000; ++i) {
    outputs.insert(Mix64(x));
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
  }
  EXPECT_EQ(outputs.size(), 100000u);
}

TEST(Mix64Test, AvalancheFlipsAboutHalfTheBits) {
  Rng rng(31);
  double total_flips = 0;
  const int kTrials = 2000;
  for (int t = 0; t < kTrials; ++t) {
    uint64_t x = rng.NextU64();
    int bit = static_cast<int>(rng.NextBounded(64));
    uint64_t d = Mix64(x) ^ Mix64(x ^ (1ULL << bit));
    total_flips += __builtin_popcountll(d);
  }
  double mean_flips = total_flips / kTrials;
  EXPECT_NEAR(mean_flips, 32.0, 1.0);
}

TEST(HashU64Test, DifferentSeedsDecorrelate) {
  int equal = 0;
  for (uint64_t k = 0; k < 1000; ++k) {
    if ((HashU64(k, 1) & 0xFF) == (HashU64(k, 2) & 0xFF)) ++equal;
  }
  // Expect about 1000/256 ~ 4 collisions in the low byte.
  EXPECT_LT(equal, 20);
}

TEST(HashToUnitTest, InUnitInterval) {
  Rng rng(32);
  for (int i = 0; i < 10000; ++i) {
    double u = HashToUnit(rng.NextU64());
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Mod61Test, MatchesNaiveModulo) {
  Rng rng(33);
  for (int i = 0; i < 10000; ++i) {
    uint64_t x = rng.NextU64() >> 2;  // < 2^62
    EXPECT_EQ(Mod61(x), x % kMersenne61);
  }
}

TEST(MulMod61Test, MatchesWideMultiplication) {
  Rng rng(34);
  for (int i = 0; i < 10000; ++i) {
    uint64_t a = rng.NextBounded(kMersenne61);
    uint64_t b = rng.NextBounded(kMersenne61);
    __uint128_t wide = static_cast<__uint128_t>(a) * b;
    EXPECT_EQ(MulMod61(a, b), static_cast<uint64_t>(wide % kMersenne61));
  }
}

TEST(PolyHashTest, DeterministicGivenRngState) {
  Rng rng1(35), rng2(35);
  PolyHash h1(3, rng1), h2(3, rng2);
  for (uint64_t k = 0; k < 100; ++k) EXPECT_EQ(h1.Hash(k), h2.Hash(k));
}

TEST(PolyHashTest, HashRangeWithinBounds) {
  Rng rng(36);
  PolyHash h(2, rng);
  for (uint64_t k = 0; k < 10000; ++k) EXPECT_LT(h.HashRange(k, 37), 37u);
}

TEST(PolyHashTest, RangeIsApproximatelyUniform) {
  Rng rng(37);
  PolyHash h(2, rng);
  const uint64_t kRange = 16;
  const int kKeys = 160000;
  std::vector<int> counts(kRange, 0);
  for (int k = 0; k < kKeys; ++k) ++counts[h.HashRange(k, kRange)];
  double expected = static_cast<double>(kKeys) / kRange;
  double chi2 = 0;
  for (int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  // 15 dof; 99.99% quantile ~ 44.3.
  EXPECT_LT(chi2, 50.0);
}

TEST(PolyHashTest, SignHashIsBalanced) {
  Rng rng(38);
  PolyHash h(4, rng);
  int sum = 0;
  const int kKeys = 100000;
  for (int k = 0; k < kKeys; ++k) sum += h.HashSign(k);
  // Mean 0, sd sqrt(n) ~ 316; allow 5 sigma.
  EXPECT_LT(std::abs(sum), 1600);
}

TEST(PolyHashTest, PairwiseIndependenceOfSigns) {
  // For 4-wise hashing, sign products over distinct keys are unbiased.
  Rng rng(39);
  PolyHash h(4, rng);
  int64_t sum = 0;
  const int kPairs = 100000;
  for (int k = 0; k < kPairs; ++k) {
    sum += h.HashSign(2 * k) * h.HashSign(2 * k + 1);
  }
  EXPECT_LT(std::abs(sum), 1600);
}

TEST(TabulationHashTest, DeterministicAndSpreads) {
  Rng rng(40);
  TabulationHash h(rng);
  EXPECT_EQ(h.Hash(12345), h.Hash(12345));
  std::set<uint64_t> outputs;
  for (uint64_t k = 0; k < 10000; ++k) outputs.insert(h.Hash(k));
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(TabulationHashTest, AvalancheOnLowBits) {
  Rng rng(41);
  TabulationHash h(rng);
  double flips = 0;
  const int kTrials = 2000;
  for (int t = 0; t < kTrials; ++t) {
    uint64_t x = rng.NextU64();
    flips += __builtin_popcountll(h.Hash(x) ^ h.Hash(x ^ 1));
  }
  EXPECT_NEAR(flips / kTrials, 32.0, 1.5);
}

}  // namespace
}  // namespace dsketch
