// The windowed epoch-ring subsystem: ring semantics (advance, row-count
// time, slots falling off), window-query totals, the estimate-identical
// cross-check against the hand-merged per-epoch construction the epoch
// bench used before the subsystem existed (on the §6.3 bursty and
// all-distinct arrival patterns), the decayed accumulator against the
// analytically decayed truth, the epoch-aligned sharded merge, and the
// window-snapshot wire round trip with replication through
// IngestSerialized.

#include <cmath>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "core/merge.h"
#include "core/subset_sum.h"
#include "query/windowed_source.h"
#include "stream/generators.h"
#include "util/random.h"
#include "window/sharded_windowed.h"
#include "window/window_wire.h"
#include "window/windowed_sketch.h"
#include "wire/codec.h"
#include "wire/varint.h"

namespace dsketch {
namespace {

// Canonical entry order for exact comparisons (count ties by item).
std::vector<SketchEntry> Canonical(std::vector<SketchEntry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const SketchEntry& a, const SketchEntry& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.item < b.item;
            });
  return entries;
}

WindowedSketchOptions SmallOptions() {
  WindowedSketchOptions opt;
  opt.window_epochs = 3;
  opt.epoch_capacity = 64;
  opt.merged_capacity = 128;
  opt.seed = 11;
  return opt;
}

TEST(WindowedSketchTest, RingAdvancesAndForgetsOldEpochs) {
  WindowedSketchOptions opt = SmallOptions();
  WindowedSpaceSaving sketch(opt);
  EXPECT_EQ(sketch.CurrentEpoch(), 0u);
  EXPECT_EQ(sketch.slots().size(), 1u);

  for (uint64_t e = 0; e < 5; ++e) {
    std::vector<uint64_t> rows(100, e);  // 100 rows of item e per epoch
    sketch.UpdateBatch(Span<const uint64_t>(rows.data(), rows.size()));
    if (e < 4) sketch.Advance();
  }
  EXPECT_EQ(sketch.CurrentEpoch(), 4u);
  EXPECT_EQ(sketch.slots().size(), 3u);  // ring holds epochs 2, 3, 4
  EXPECT_EQ(sketch.slots().front().epoch, 2u);
  EXPECT_EQ(sketch.TotalRows(), 500u);

  // Full-window merge covers exactly the ring: epochs 2-4, 300 rows.
  UnbiasedSpaceSaving window = sketch.QueryWindow();
  EXPECT_EQ(window.TotalCount(), 300);
  EXPECT_GT(window.EstimateCount(3), 0);
  EXPECT_EQ(window.EstimateCount(0), 0);  // fell off the ring

  // last_k = 1 sees only the open epoch.
  UnbiasedSpaceSaving newest = sketch.QueryWindow(1);
  EXPECT_EQ(newest.TotalCount(), 100);
  EXPECT_EQ(newest.EstimateCount(4), 100);
}

TEST(WindowedSketchTest, RowCountTimeAutoAdvances) {
  WindowedSketchOptions opt = SmallOptions();
  opt.rows_per_epoch = 50;
  WindowedSpaceSaving sketch(opt);
  std::vector<uint64_t> rows(175);
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = i % 7;
  sketch.UpdateBatch(Span<const uint64_t>(rows.data(), rows.size()));
  // 175 rows at 50/epoch: epochs 0-2 closed full, epoch 3 open with 25.
  EXPECT_EQ(sketch.CurrentEpoch(), 3u);
  EXPECT_EQ(sketch.RowsInCurrentEpoch(), 25u);
  EXPECT_EQ(sketch.QueryWindow().TotalCount(), 125);  // epochs 1-3

  // Per-row updates honor the same boundary.
  sketch.Update(1);  // fills epoch 3 to 26 rows
  EXPECT_EQ(sketch.CurrentEpoch(), 3u);
  for (int i = 0; i < 24; ++i) sketch.Update(2);
  sketch.Update(3);  // 51st row: lands in epoch 4
  EXPECT_EQ(sketch.CurrentEpoch(), 4u);
  EXPECT_EQ(sketch.RowsInCurrentEpoch(), 1u);
}

TEST(WindowedSketchTest, AdvanceToSkipsEpochsWithEmptySlots) {
  WindowedSpaceSaving sketch(SmallOptions());
  std::vector<uint64_t> rows(40, 9);
  sketch.UpdateBatch(Span<const uint64_t>(rows.data(), rows.size()));
  sketch.AdvanceTo(5);
  EXPECT_EQ(sketch.CurrentEpoch(), 5u);
  EXPECT_EQ(sketch.slots().size(), 3u);  // epochs 3, 4, 5 — all empty
  EXPECT_EQ(sketch.QueryWindow().TotalCount(), 0);
  EXPECT_EQ(sketch.TotalRows(), 40u);  // expired rows still counted
}

TEST(WindowedSketchTest, AdvanceToFastForwardsHugeJumps) {
  WindowedSpaceSaving sketch(SmallOptions());  // window_epochs = 3
  std::vector<uint64_t> rows(40, 9);
  sketch.UpdateBatch(Span<const uint64_t>(rows.data(), rows.size()));

  // Would spin ~2^40 per-epoch closes without the fast-forward path.
  const uint64_t far = uint64_t{1} << 40;
  sketch.AdvanceTo(far);
  EXPECT_EQ(sketch.CurrentEpoch(), far);
  ASSERT_EQ(sketch.slots().size(), 3u);  // ring rebuilt: far-2 .. far
  EXPECT_EQ(sketch.slots().front().epoch, far - 2);
  EXPECT_EQ(sketch.QueryWindow().TotalCount(), 0);
  EXPECT_EQ(sketch.TotalRows(), 40u);  // expired rows still counted
  EXPECT_EQ(sketch.RowsInCurrentEpoch(), 0u);

  // The ring keeps working at the new clock, including a second jump
  // all the way to the largest stamp the decoders accept.
  sketch.Update(1);
  sketch.AdvanceTo(kMaxEpochStamp);
  EXPECT_EQ(sketch.CurrentEpoch(), kMaxEpochStamp);
  EXPECT_EQ(sketch.QueryWindow().TotalCount(), 0);
  EXPECT_EQ(sketch.TotalRows(), 41u);
}

TEST(WindowedSketchTest, FastForwardAgesDecayedMassAnalytically) {
  WindowedSketchOptions opt;
  opt.window_epochs = 2;
  opt.epoch_capacity = 64;
  opt.merged_capacity = 128;
  opt.half_life_epochs = 2.0;
  opt.seed = 13;
  WindowedSpaceSaving sketch(opt);
  std::vector<uint64_t> rows(1000);
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = i % 50;
  sketch.UpdateBatch(Span<const uint64_t>(rows.data(), rows.size()));

  // A jump past the window ages the epoch-0 mass in one Scale: 1000
  // rows, 10 epochs old at half-life 2 → 1000 * 2^-5.
  sketch.AdvanceTo(10);
  const double truth = 1000.0 * std::exp2(-10.0 / 2.0);
  EXPECT_NEAR(sketch.QueryDecayed().TotalWeight(), truth, truth * 1e-9);

  // A lag beyond double's range drains the accumulator instead of
  // aborting on a zero scale factor.
  sketch.AdvanceTo(uint64_t{1} << 40);
  EXPECT_EQ(sketch.QueryDecayed().TotalWeight(), 0.0);
}

// Satellite cross-check: QueryWindow over last_k epochs is
// estimate-identical to the hand-merged per-epoch construction of
// bench/epoch_common.h (per-epoch sketches merged with MergeAll) when
// both use the same per-epoch seeds and merge seed — on the §6.3
// bursty and all-distinct arrival patterns.
void CrossCheckHandMerged(const std::vector<uint64_t>& stream,
                          size_t n_epochs, uint64_t seed) {
  const size_t m = 48;
  const size_t rows_per_epoch = stream.size() / n_epochs;

  WindowedSketchOptions opt;
  opt.window_epochs = n_epochs;  // keep every epoch mergeable
  opt.epoch_capacity = m;
  opt.merged_capacity = m;
  opt.seed = seed;
  WindowedSpaceSaving windowed(opt);

  std::vector<UnbiasedSpaceSaving> hand;
  for (size_t e = 0; e < n_epochs; ++e) {
    hand.emplace_back(m, seed + e);  // the ring's seed schedule
    const size_t begin = e * rows_per_epoch;
    const size_t len =
        e + 1 == n_epochs ? stream.size() - begin : rows_per_epoch;
    Span<const uint64_t> chunk(stream.data() + begin, len);
    hand.back().UpdateBatch(chunk);
    windowed.UpdateBatch(chunk);
    if (e + 1 < n_epochs) windowed.Advance();
  }

  for (size_t last_k : {size_t{1}, size_t{2}, n_epochs}) {
    const uint64_t merge_seed = 900000 + last_k;
    std::vector<const UnbiasedSpaceSaving*> win;
    for (size_t e = n_epochs - last_k; e < n_epochs; ++e) {
      win.push_back(&hand[e]);
    }
    UnbiasedSpaceSaving expected = MergeAll(win, m, merge_seed);
    UnbiasedSpaceSaving actual = windowed.QueryWindow(last_k, m, merge_seed);
    EXPECT_EQ(actual.TotalCount(), expected.TotalCount());
    EXPECT_EQ(Canonical(actual.Entries()), Canonical(expected.Entries()))
        << "last_k=" << last_k;
  }
}

TEST(WindowedSketchTest, WindowQueryMatchesHandMergedEpochsOnBursty) {
  // §6.3 bursty pattern: one hot item bursting between runs of fresh
  // distinct items, split into 4 epochs.
  std::vector<uint64_t> stream =
      BurstyStream(/*burst_item=*/0, /*burst_length=*/300,
                   /*quiet_length=*/300, /*periods=*/4, /*fresh_start_id=*/1);
  CrossCheckHandMerged(stream, 4, 4001);
}

TEST(WindowedSketchTest, WindowQueryMatchesHandMergedEpochsOnAllDistinct) {
  // §6.3 all-distinct pattern: every row a fresh item — the worst case
  // for any bin sketch, and the case where merge randomization matters
  // most (every bin ties at count 1).
  std::vector<uint64_t> stream = DistinctStream(2400);
  CrossCheckHandMerged(stream, 4, 4002);
}

// The merge-cache contract, pinned exactly: QueryWindow (hierarchical
// cached partials) and QueryWindowUncached (from-scratch W-way pairwise
// re-merge) are *bit-identical* — same entries in the same internal
// order — on the same state, for every last_k and merge seed. Checked
// cold (empty cache), warm (memo replay), and after every kind of
// invalidation the cache must survive: open-epoch ingest, single-step
// advances, and multi-epoch gap advances that expire cached spans.
TEST(WindowedSketchTest, CachedWindowQueriesAreBitIdenticalToUncached) {
  WindowedSketchOptions opt;
  opt.window_epochs = 8;
  opt.epoch_capacity = 48;
  opt.merged_capacity = 96;
  opt.seed = 501;
  WindowedSpaceSaving sketch(opt);
  Rng rng(17);

  auto expect_identical = [&](const char* stage) {
    for (size_t last_k : {size_t{1}, size_t{3}, size_t{8}}) {
      for (uint64_t ms : {uint64_t{1}, uint64_t{777}}) {
        const UnbiasedSpaceSaving cached = sketch.QueryWindow(last_k, 96, ms);
        const UnbiasedSpaceSaving raw =
            sketch.QueryWindowUncached(last_k, 96, ms);
        EXPECT_EQ(cached.Entries(), raw.Entries())
            << stage << " last_k=" << last_k << " merge_seed=" << ms;
        // Warm replay: the second query answers from the combine memo
        // and must reproduce the cold answer bit for bit.
        EXPECT_EQ(sketch.QueryWindow(last_k, 96, ms).Entries(),
                  cached.Entries())
            << stage << " (warm) last_k=" << last_k;
      }
    }
  };

  for (uint64_t e = 0; e < 12; ++e) {
    std::vector<uint64_t> rows;
    for (int i = 0; i < 400; ++i) rows.push_back(rng.NextBounded(120));
    sketch.UpdateBatch(Span<const uint64_t>(rows.data(), rows.size()));
    // Query mid-stream so later epochs invalidate a *warm* cache.
    if (e % 3 == 0) expect_identical("mid-stream");
    sketch.Advance();
  }
  expect_identical("after per-epoch advances");

  // Partial invalidation: rows into the open epoch dirty only the open
  // suffix — cached closed-span partials must still compose correctly.
  sketch.Update(5);
  expect_identical("after open-epoch ingest");

  // A gap advance expires cached spans off the ring's left edge and
  // inserts empty slots the level-0 lookup must treat as absent.
  sketch.AdvanceTo(sketch.CurrentEpoch() + 5);
  expect_identical("after gap advance");
}

// LoadState can replace slot contents at epochs the merge tree already
// cached (a restore absorbing a peer's ring mid-stream). A warm cache
// must not leak pre-restore partials into post-restore answers: queries
// after LoadState are bit-identical to the uncached path *and* to a
// sketch that held the donor state all along.
TEST(WindowedSketchTest, RestoreMidStreamRebuildsWarmMergeCache) {
  WindowedSketchOptions opt;
  opt.window_epochs = 4;
  opt.epoch_capacity = 48;
  opt.merged_capacity = 96;
  opt.seed = 502;
  WindowedSpaceSaving warm(opt);
  WindowedSpaceSaving donor(opt);

  Rng rng(23);
  for (uint64_t e = 0; e < 6; ++e) {
    std::vector<uint64_t> warm_rows;
    std::vector<uint64_t> donor_rows;
    for (int i = 0; i < 300; ++i) {
      warm_rows.push_back(rng.NextBounded(80));
      donor_rows.push_back(100000 + rng.NextBounded(80));  // disjoint labels
    }
    warm.UpdateBatch(Span<const uint64_t>(warm_rows.data(), warm_rows.size()));
    donor.UpdateBatch(
        Span<const uint64_t>(donor_rows.data(), donor_rows.size()));
    if (e + 1 < 6) {
      warm.Advance();
      donor.Advance();
    }
  }

  // Warm every cache layer: node partials and the combine memo.
  for (size_t last_k : {size_t{1}, size_t{2}, size_t{4}}) {
    (void)warm.QueryWindow(last_k, 96, 9);
  }

  warm.LoadState(donor.slots(), donor.decayed_accumulator(),
                 donor.RowsInCurrentEpoch(), donor.TotalRows());

  for (size_t last_k : {size_t{1}, size_t{2}, size_t{4}}) {
    const auto after = warm.QueryWindow(last_k, 96, 9).Entries();
    EXPECT_EQ(after, warm.QueryWindowUncached(last_k, 96, 9).Entries())
        << "last_k=" << last_k;
    EXPECT_EQ(after, donor.QueryWindow(last_k, 96, 9).Entries())
        << "last_k=" << last_k;
    // Every surviving answer is donor data: warm's old labels (< 100000)
    // must be gone entirely.
    for (const SketchEntry& e : after) EXPECT_GE(e.item, 100000u);
  }
}

TEST(WindowedSketchTest, DecayedViewTracksAnalyticTruth) {
  WindowedSketchOptions opt;
  opt.window_epochs = 2;  // ring shorter than the decay horizon
  opt.epoch_capacity = 256;
  opt.merged_capacity = 512;
  opt.half_life_epochs = 2.0;
  opt.seed = 77;
  WindowedSpaceSaving sketch(opt);

  // Epoch e carries 1000 rows of epoch-disjoint labels.
  const size_t kEpochs = 6;
  const size_t kRows = 1000;
  for (uint64_t e = 0; e < kEpochs; ++e) {
    std::vector<uint64_t> rows;
    rows.reserve(kRows);
    for (size_t i = 0; i < kRows; ++i) rows.push_back(e * 10000 + i % 200);
    sketch.UpdateBatch(Span<const uint64_t>(rows.data(), rows.size()));
    if (e + 1 < kEpochs) sketch.Advance();
  }

  WeightedSpaceSaving decayed = sketch.QueryDecayed();
  // Total decayed mass: sum over epochs of rows * 2^-(T-e)/hl, T = 5.
  double truth = 0.0;
  for (size_t e = 0; e < kEpochs; ++e) {
    truth += static_cast<double>(kRows) *
             std::exp2(-(static_cast<double>(kEpochs - 1 - e)) / 2.0);
  }
  EXPECT_NEAR(decayed.TotalWeight(), truth, truth * 1e-9);

  // Per-epoch decayed mass is preserved through the folds: the weight
  // landing on epoch e's label range matches its analytic decay.
  for (size_t e = 0; e < kEpochs; ++e) {
    auto est = EstimateSubsetSum(decayed, [e](uint64_t item) {
      return item / 10000 == e;
    });
    const double epoch_truth =
        static_cast<double>(kRows) *
        std::exp2(-(static_cast<double>(kEpochs - 1 - e)) / 2.0);
    EXPECT_NEAR(est.estimate, epoch_truth, truth * 0.35)
        << "epoch " << e;
  }
}

TEST(ShardedWindowedTest, EpochAlignedSnapshotPreservesWindowTotals) {
  ShardedSketchOptions shard;
  shard.num_shards = 3;
  shard.shard_capacity = 64;  // unused by the windowed factory
  shard.seed = 5;
  WindowedSketchOptions window;
  window.window_epochs = 3;
  window.epoch_capacity = 256;
  window.merged_capacity = 512;
  auto sharded = MakeShardedWindowed(shard, window);

  // 4 epochs x 3000 rows of epoch-disjoint labels, shipped as stamped
  // rows in one producer stream.
  const size_t kEpochs = 4;
  const size_t kRows = 3000;
  std::vector<EpochRow> rows;
  rows.reserve(kEpochs * kRows);
  Rng rng(99);
  for (uint64_t e = 0; e < kEpochs; ++e) {
    for (size_t i = 0; i < kRows; ++i) {
      rows.push_back({e * 100000 + rng.NextBounded(400), e});
    }
  }
  sharded->Ingest(Span<const EpochRow>(rows.data(), rows.size()));
  sharded->Flush();

  WindowedSpaceSaving merged = sharded->Snapshot(window.epoch_capacity, 123);
  EXPECT_EQ(merged.CurrentEpoch(), kEpochs - 1);
  EXPECT_EQ(merged.slots().size(), window.window_epochs);
  // Ring totals: epochs 1-3 (epoch 0 fell off), 9000 rows.
  EXPECT_EQ(merged.QueryWindow().TotalCount(),
            static_cast<int64_t>(3 * kRows));
  // last_k = 1: exactly the newest epoch's rows, all in its label range.
  UnbiasedSpaceSaving newest = merged.QueryWindow(1);
  EXPECT_EQ(newest.TotalCount(), static_cast<int64_t>(kRows));
  for (const SketchEntry& e : newest.Entries()) {
    EXPECT_EQ(e.item / 100000, kEpochs - 1);
  }
}

TEST(ShardedWindowedTest, MergeCreditsOpenEpochRowsToAlignedShardsOnly) {
  // A lagging shard's open-epoch rows belong to a *closed* slot of the
  // merged ring, so they must not inflate the merged open-epoch count.
  WindowedSketchOptions opt;
  opt.window_epochs = 4;
  opt.epoch_capacity = 16;
  opt.merged_capacity = 32;
  opt.seed = 3;
  WindowedSpaceSaving a(opt);
  WindowedSpaceSaving b(opt);
  a.AdvanceTo(5);
  for (int i = 0; i < 10; ++i) a.Update(1);
  b.AdvanceTo(3);  // lagging: saw no rows for epochs 4-5
  for (int i = 0; i < 7; ++i) b.Update(2);

  WindowedSpaceSaving merged =
      MergeShards(std::vector<WindowedSpaceSaving>{a, b}, 16, 9);
  EXPECT_EQ(merged.CurrentEpoch(), 5u);
  EXPECT_EQ(merged.RowsInCurrentEpoch(), 10u);  // shard a only
  EXPECT_EQ(merged.TotalRows(), 17u);
  // The lagging shard's rows still live in their own (closed) slot.
  EXPECT_EQ(merged.QueryWindow(3, 16, 4).TotalCount(), 17);
  EXPECT_EQ(merged.QueryWindow(1, 16, 4).TotalCount(), 10);
}

TEST(ShardedWindowedTest, DecayedMergeSurvivesLagBeyondDoubleRange) {
  // A shard lagging so far behind the merged clock that its age factor
  // underflows double (trivial with timestamp-valued epochs) must drain
  // in the merge, not hit Scale's factor > 0 contract.
  WindowedSketchOptions opt;
  opt.window_epochs = 2;
  opt.epoch_capacity = 16;
  opt.merged_capacity = 32;
  opt.half_life_epochs = 2.0;
  opt.seed = 3;
  WindowedSpaceSaving a(opt);
  WindowedSpaceSaving b(opt);
  for (int i = 0; i < 100; ++i) b.Update(2);
  b.Advance();  // 100 rows of item 2 now in b's decayed accumulator
  a.AdvanceTo(uint64_t{1} << 40);
  for (int i = 0; i < 10; ++i) a.Update(5);

  WindowedSpaceSaving merged =
      MergeShards(std::vector<WindowedSpaceSaving>{a, b}, 16, 9);
  EXPECT_EQ(merged.CurrentEpoch(), uint64_t{1} << 40);
  // b's mass (accumulator and open epoch both) decayed past double's
  // range; only a's open-epoch rows carry weight.
  EXPECT_NEAR(merged.QueryDecayed().TotalWeight(), 10.0, 1e-9);
}

TEST(WindowWireTest, RingRoundTripsThroughWireBytes) {
  WindowedSketchOptions opt = SmallOptions();
  opt.rows_per_epoch = 0;
  opt.half_life_epochs = 3.0;
  WindowedSpaceSaving sketch(opt);
  Rng rng(42);
  for (uint64_t e = 0; e < 5; ++e) {
    std::vector<uint64_t> rows;
    for (int i = 0; i < 500; ++i) rows.push_back(rng.NextBounded(90));
    sketch.UpdateBatch(Span<const uint64_t>(rows.data(), rows.size()));
    if (e < 4) sketch.Advance();
  }

  const std::string bytes = SerializeWindowed(sketch);
  auto info = wire::DescribeWire(bytes);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->kind, kWireKindWindowed);
  EXPECT_STREQ(info->kind_name, "windowed_sketch");
  EXPECT_EQ(info->version, wire::kVersionCurrent);

  auto restored = DeserializeWindowed(bytes, opt.seed);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->CurrentEpoch(), sketch.CurrentEpoch());
  EXPECT_EQ(restored->TotalRows(), sketch.TotalRows());
  ASSERT_EQ(restored->slots().size(), sketch.slots().size());
  for (size_t i = 0; i < sketch.slots().size(); ++i) {
    EXPECT_EQ(restored->slots()[i].epoch, sketch.slots()[i].epoch);
    EXPECT_EQ(Canonical(restored->slots()[i].sketch.Entries()),
              Canonical(sketch.slots()[i].sketch.Entries()));
  }
  // The restored total re-sums the entries, so it may differ from the
  // live accumulator's scale/merge history by fp association only.
  // DecayedClosedView is the settled semantics on both sides (the live
  // ring may still hold epochs in the amortized fold batch).
  const double live_total = sketch.DecayedClosedView().TotalWeight();
  EXPECT_NEAR(restored->DecayedClosedView().TotalWeight(), live_total,
              live_total * 1e-12);
  // Window queries on the restored ring behave identically.
  EXPECT_EQ(restored->QueryWindow(2, 64, 7).TotalCount(),
            sketch.QueryWindow(2, 64, 7).TotalCount());
}

TEST(WindowWireTest, ShardedFleetReplicatesRingState) {
  ShardedSketchOptions shard;
  shard.num_shards = 2;
  shard.seed = 21;
  WindowedSketchOptions window;
  window.window_epochs = 4;
  window.epoch_capacity = 128;
  window.merged_capacity = 256;

  WindowedSketchSource primary(shard, window);
  std::vector<uint64_t> items;
  Rng rng(7);
  for (uint64_t e = 0; e < 3; ++e) {
    items.clear();
    for (int i = 0; i < 2000; ++i) {
      items.push_back(e * 1000 + rng.NextBounded(300));
    }
    primary.Advance(e);
    primary.Ingest(Span<const uint64_t>(items.data(), items.size()));
  }
  primary.Flush();
  const std::string ring = primary.SaveSnapshot();

  // A fresh replica catches up from the ring bytes alone: totals and
  // per-window totals match exactly (totals are preserved by every
  // reduction on the path).
  ShardedSketchOptions shard_b = shard;
  shard_b.seed = 4000;
  WindowedSketchSource replica(shard_b, window);
  ASSERT_TRUE(replica.RestoreSnapshot(ring));
  EXPECT_EQ(replica.View().TotalCount(), primary.View().TotalCount());
  EXPECT_EQ(replica.WindowView(1).TotalCount(),
            primary.WindowView(1).TotalCount());
  EXPECT_EQ(replica.WindowView(2).TotalCount(),
            primary.WindowView(2).TotalCount());

  // Malformed bytes are refused with the state untouched.
  EXPECT_FALSE(replica.RestoreSnapshot("not a ring"));
  EXPECT_EQ(replica.sharded().num_absorbed(), 1u);
}

// Regression: WindowView(last_k) with last_k >= the current ring length
// used to alias the full-window cache — a fixed last_k silently changed
// meaning ("the whole ring") while the ring was still short, and the
// cached sketch was not recomputed when the ring grew past last_k. The
// caches are now keyed by the *caller's* last_k: a fixed last_k means
// "the newest k epochs" at every ring length, across interleaved
// full-window reads and mutations.
TEST(WindowedSourceTest, FixedLastKMeansNewestKEpochsWhileRingGrows) {
  ShardedSketchOptions shard;
  shard.num_shards = 2;
  shard.seed = 61;
  WindowedSketchOptions window;
  window.window_epochs = 6;
  window.epoch_capacity = 64;
  window.merged_capacity = 128;
  WindowedSketchSource source(shard, window);

  // Epoch e carries a distinct row count, so each expected window total
  // identifies exactly which epochs were merged.
  auto ingest_epoch = [&](uint64_t e, size_t n) {
    source.Advance(e);
    std::vector<uint64_t> rows(n, e);
    source.Ingest(Span<const uint64_t>(rows.data(), rows.size()));
  };

  ingest_epoch(0, 100);
  // Ring holds 1 epoch: last_k=3 clamps to it, but stays keyed as 3.
  EXPECT_EQ(source.WindowView(3).TotalCount(), 100);
  ingest_epoch(1, 200);
  EXPECT_EQ(source.WindowView(3).TotalCount(), 300);
  EXPECT_EQ(source.View().TotalCount(), 300);  // interleaved full read
  ingest_epoch(2, 400);
  EXPECT_EQ(source.WindowView(3).TotalCount(), 700);
  ingest_epoch(3, 800);
  // Ring now exceeds last_k: the view must drop epoch 0, not keep
  // serving the full-window merge it aliased while the ring was short.
  EXPECT_EQ(source.WindowView(3).TotalCount(), 1400);
  EXPECT_EQ(source.View().TotalCount(), 1500);
  // Cached replay of the same last_k is stable...
  EXPECT_EQ(source.WindowView(3).TotalCount(), 1400);
  // ...switching last_k swaps the one partial-window cache...
  EXPECT_EQ(source.WindowView(1).TotalCount(), 800);
  // ...and switching back re-merges rather than serving the stale k.
  EXPECT_EQ(source.WindowView(3).TotalCount(), 1400);
}

// The documented reference contract: views stay valid until the next
// Ingest/IngestEpoch/Advance/RestoreSnapshot. Reads — DecayedView,
// MergedRing, SaveSnapshot — must never destroy a view some caller
// still holds (they used to, lazily, when the first read after a
// mutation reset every cache). Value equality is asserted through the
// held references; asan turns any stale-reference bug into a hard fail.
TEST(WindowedSourceTest, ReadsNeverInvalidateHeldViews) {
  ShardedSketchOptions shard;
  shard.num_shards = 2;
  shard.seed = 67;
  WindowedSketchOptions window;
  window.window_epochs = 4;
  window.epoch_capacity = 64;
  window.merged_capacity = 128;
  window.half_life_epochs = 2.0;
  WindowedSketchSource source(shard, window);

  std::vector<uint64_t> rows(150, 1);
  source.Ingest(Span<const uint64_t>(rows.data(), rows.size()));
  source.Advance(1);
  std::vector<uint64_t> more(50, 2);
  source.Ingest(Span<const uint64_t>(more.data(), more.size()));

  const UnbiasedSpaceSaving& full = source.View();
  const int64_t full_total = full.TotalCount();
  const UnbiasedSpaceSaving& win = source.WindowView(1);
  const int64_t win_total = win.TotalCount();
  EXPECT_EQ(full_total, 200);
  EXPECT_EQ(win_total, 50);

  // Reads on a clean source: re-derive whatever they need, but leave
  // handed-out views alone.
  (void)source.DecayedView();
  (void)source.MergedRing();
  const std::string snapshot = source.SaveSnapshot();
  EXPECT_FALSE(snapshot.empty());
  EXPECT_EQ(full.TotalCount(), full_total);
  EXPECT_EQ(win.TotalCount(), win_total);

  // A mutation is the invalidation point — fresh views see it.
  std::vector<uint64_t> last(25, 3);
  source.Ingest(Span<const uint64_t>(last.data(), last.size()));
  EXPECT_EQ(source.View().TotalCount(), 225);
  EXPECT_EQ(source.WindowView(1).TotalCount(), 75);
}

TEST(WindowWireTest, RestoreFromAheadPeerAdvancesProducerEpoch) {
  ShardedSketchOptions shard;
  shard.num_shards = 2;
  shard.seed = 31;
  WindowedSketchOptions window;
  window.window_epochs = 3;
  window.epoch_capacity = 64;
  window.merged_capacity = 128;

  WindowedSketchSource primary(shard, window);
  primary.Advance(5);
  std::vector<uint64_t> peer_rows(200, 1);
  primary.Ingest(Span<const uint64_t>(peer_rows.data(), peer_rows.size()));
  primary.Flush();
  const std::string ring = primary.SaveSnapshot();

  ShardedSketchOptions shard_b = shard;
  shard_b.seed = 77;
  WindowedSketchSource replica(shard_b, window);
  ASSERT_TRUE(replica.RestoreSnapshot(ring));
  // The replica's producer clock adopts the peer's newer epoch...
  EXPECT_EQ(replica.current_epoch(), 5u);
  // ...so rows ingested after the restore are stamped inside the merged
  // window instead of landing at the stale epoch 0, outside the 3-epoch
  // ring, and silently vanishing from window queries.
  std::vector<uint64_t> local_rows(100, 2);
  replica.Ingest(Span<const uint64_t>(local_rows.data(), local_rows.size()));
  EXPECT_EQ(replica.View().TotalCount(), 300);
  EXPECT_EQ(replica.WindowView(1).TotalCount(), 300);  // all in epoch 5
}

// Minimal well-formed ring blob with one (empty) slot at `slot_epoch`,
// mirroring SerializeWindowed's layout byte for byte.
std::string RingBlobWithSlotEpoch(uint64_t slot_epoch,
                                  double half_life = 0.0) {
  std::string out;
  wire::WriteEnvelope(out, kWireKindWindowed, wire::kVersionCurrent);
  wire::VarintWriter w(out);
  w.PutVarint(4);          // window_epochs
  w.PutVarint(16);         // epoch_capacity
  w.PutVarint(32);         // merged_capacity
  w.PutVarint(0);          // rows_per_epoch
  w.PutDouble(half_life);  // half_life_epochs
  w.PutVarint(0);          // rows_in_epoch
  w.PutVarint(0);          // total_rows
  w.PutVarint(1);          // n_slots
  const std::string inner = Serialize(UnbiasedSpaceSaving(16, 1));
  w.PutVarint(slot_epoch);
  w.PutVarint(inner.size());
  out.append(inner);
  if (half_life > 0.0) {
    w.PutByte(1);
    const std::string acc = Serialize(WeightedSpaceSaving(32, 1));
    w.PutVarint(acc.size());
    out.append(acc);
  } else {
    w.PutByte(0);
  }
  return out;
}

TEST(WindowWireTest, SlotEpochsBeyondTheClockCapAreRejected) {
  // Live stamps are capped at service decode; a restored ring must obey
  // the same clock bound (the cap itself is the last accepted value).
  EXPECT_TRUE(
      DeserializeWindowed(RingBlobWithSlotEpoch(kMaxEpochStamp)).has_value());
  EXPECT_FALSE(DeserializeWindowed(RingBlobWithSlotEpoch(kMaxEpochStamp + 1))
                   .has_value());
}

TEST(WindowWireTest, UnderflowHalfLivesAreRejected) {
  // Half-lives below ~0.00094 epochs underflow the per-epoch factor to
  // zero — decay silently off while half_life > 0. The constructors
  // refuse the configuration (see death_test), so the decoder must too:
  // a blob claiming one would otherwise feed the constructor CHECK from
  // hostile bytes, breaking the never-abort decode contract.
  EXPECT_TRUE(ValidHalfLife(0.0));
  EXPECT_TRUE(ValidHalfLife(2.0));
  EXPECT_FALSE(ValidHalfLife(1e-5));
  EXPECT_TRUE(DeserializeWindowed(RingBlobWithSlotEpoch(3, /*half_life=*/2.0))
                  .has_value());
  EXPECT_FALSE(DeserializeWindowed(RingBlobWithSlotEpoch(3, /*half_life=*/1e-5))
                   .has_value());
}

TEST(WindowWireTest, DecayedFleetSurvivesRestoredNonDecayedRing) {
  // A restored blob carries its own options; a half_life-0 ring
  // absorbed into a decay-enabled fleet must age under the *fleet's*
  // half-life when it lags (its own would give factor exp2(-lag/0) = 0,
  // which Scale CHECK-rejects — a remotely reachable abort via RESTORE).
  ShardedSketchOptions shard;
  shard.num_shards = 2;
  shard.seed = 41;
  WindowedSketchOptions window;
  window.window_epochs = 4;
  window.epoch_capacity = 16;
  window.merged_capacity = 32;
  window.half_life_epochs = 2.0;
  WindowedSketchSource source(shard, window);
  std::vector<uint64_t> rows(50, 6);
  source.Ingest(Span<const uint64_t>(rows.data(), rows.size()));

  ASSERT_TRUE(source.RestoreSnapshot(RingBlobWithSlotEpoch(3)));
  source.Advance(10);
  std::vector<uint64_t> more(20, 7);  // stamped 10: the restored ring lags
  source.Ingest(Span<const uint64_t>(more.data(), more.size()));
  WeightedSpaceSaving decayed = source.DecayedView();  // used to abort
  // Open-epoch rows at weight 1 plus the epoch-0 rows aged 10 epochs.
  EXPECT_NEAR(decayed.TotalWeight(),
              20.0 + 50.0 * std::exp2(-10.0 / 2.0), 1e-6);
  EXPECT_EQ(source.current_epoch(), 10u);
}

TEST(WindowWireTest, PeekNewestEpochWalksSlotHeadersOnly) {
  WindowedSpaceSaving sketch(SmallOptions());
  std::vector<uint64_t> rows(30, 4);
  sketch.UpdateBatch(Span<const uint64_t>(rows.data(), rows.size()));
  sketch.AdvanceTo(9);
  sketch.Update(5);
  const std::string bytes = SerializeWindowed(sketch);
  std::optional<uint64_t> newest = PeekWindowedNewestEpoch(bytes);
  ASSERT_TRUE(newest.has_value());
  EXPECT_EQ(*newest, 9u);
  // Malformed input degrades to nullopt, never a crash.
  EXPECT_FALSE(PeekWindowedNewestEpoch("garbage").has_value());
  EXPECT_FALSE(
      PeekWindowedNewestEpoch(std::string_view(bytes.data(), 10)).has_value());
}

TEST(WindowWireTest, HostileRingHeadersAreRejected) {
  // A valid blob tampered at the ring-metadata level must be refused
  // cleanly (the adversarial suite sweeps bit flips; these pin the
  // specific caps).
  WindowedSpaceSaving sketch(SmallOptions());
  std::vector<uint64_t> rows(50, 3);
  sketch.UpdateBatch(Span<const uint64_t>(rows.data(), rows.size()));
  const std::string good = SerializeWindowed(sketch);
  ASSERT_TRUE(DeserializeWindowed(good).has_value());

  // Truncations at every boundary.
  for (size_t cut = 0; cut < good.size(); ++cut) {
    EXPECT_FALSE(
        DeserializeWindowed(std::string_view(good.data(), cut)).has_value())
        << "cut at " << cut;
  }
  // Trailing garbage.
  EXPECT_FALSE(DeserializeWindowed(good + std::string(1, '\0')).has_value());
  // Wrong kind byte (an unbiased blob is not a ring).
  UnbiasedSpaceSaving flat(8, 1);
  flat.Update(1);
  EXPECT_FALSE(DeserializeWindowed(Serialize(flat)).has_value());
}

}  // namespace
}  // namespace dsketch
