// Batch/sequential equivalence: for every sketch variant, UpdateBatch
// with the same seed must be bit-for-bit identical to row-at-a-time
// Update — same bins in the same order, same totals, and the same RNG
// stream (checked by continuing both sketches with more rows afterwards).
// This is the contract that makes the batched ingestion path a pure
// performance change.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/decayed_space_saving.h"
#include "core/deterministic_space_saving.h"
#include "core/multi_metric_space_saving.h"
#include "core/unbiased_space_saving.h"
#include "core/weighted_space_saving.h"
#include "stream/distributions.h"
#include "stream/generators.h"
#include "util/random.h"
#include "util/span.h"

namespace dsketch {
namespace {

// A skewed stream with a realistic mix of tracked and untracked items.
std::vector<uint64_t> TestStream(size_t distinct, double mean, uint64_t seed) {
  auto counts = WeibullCounts(distinct, mean, 0.4);
  Rng rng(seed);
  return PermutedStream(counts, rng);
}

// Feeds `rows` via UpdateBatch in uneven batch sizes (including 0 and 1)
// to exercise chunk boundaries.
template <typename Fn>
void FeedInBatches(const std::vector<uint64_t>& rows, Fn&& feed) {
  static const size_t kSizes[] = {1, 7, 0, 256, 300, 31, 1024, 3};
  size_t pos = 0, s = 0;
  while (pos < rows.size()) {
    size_t len = kSizes[s % (sizeof(kSizes) / sizeof(kSizes[0]))];
    if (len > rows.size() - pos) len = rows.size() - pos;
    feed(Span<const uint64_t>(rows.data() + pos, len));
    pos += len;
    ++s;
  }
}

template <typename Sketch>
void ExpectSameState(const Sketch& a, const Sketch& b) {
  ASSERT_EQ(a.size(), b.size());
  auto ea = a.Entries(), eb = b.Entries();
  ASSERT_EQ(ea.size(), eb.size());
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].item, eb[i].item) << "entry " << i;
    EXPECT_EQ(ea[i].count, eb[i].count) << "entry " << i;
  }
}

TEST(BatchUpdateTest, UnbiasedMatchesSequentialBitForBit) {
  auto rows = TestStream(5000, 40.0, 1);
  UnbiasedSpaceSaving row_by_row(128, 42), batched(128, 42);
  for (uint64_t item : rows) row_by_row.Update(item);
  FeedInBatches(rows, [&](Span<const uint64_t> b) { batched.UpdateBatch(b); });

  EXPECT_EQ(row_by_row.TotalCount(), batched.TotalCount());
  EXPECT_EQ(row_by_row.MinCount(), batched.MinCount());
  ExpectSameState(row_by_row, batched);

  // The RNG streams must be aligned too: continuing both sketches row by
  // row keeps them identical only if batching consumed the same draws.
  auto more = TestStream(5000, 10.0, 2);
  for (uint64_t item : more) {
    row_by_row.Update(item);
    batched.Update(item);
  }
  ExpectSameState(row_by_row, batched);
}

TEST(BatchUpdateTest, DeterministicMatchesSequentialBitForBit) {
  auto rows = TestStream(3000, 30.0, 3);
  DeterministicSpaceSaving row_by_row(64, 7), batched(64, 7);
  for (uint64_t item : rows) row_by_row.Update(item);
  FeedInBatches(rows, [&](Span<const uint64_t> b) { batched.UpdateBatch(b); });
  EXPECT_EQ(row_by_row.TotalCount(), batched.TotalCount());
  ExpectSameState(row_by_row, batched);
}

TEST(BatchUpdateTest, UnbiasedFirstSlotTieBreakAlsoMatches) {
  auto rows = TestStream(2000, 25.0, 4);
  UnbiasedSpaceSaving row_by_row(64, 5, TieBreak::kFirstSlot);
  UnbiasedSpaceSaving batched(64, 5, TieBreak::kFirstSlot);
  for (uint64_t item : rows) row_by_row.Update(item);
  FeedInBatches(rows, [&](Span<const uint64_t> b) { batched.UpdateBatch(b); });
  ExpectSameState(row_by_row, batched);
}

TEST(BatchUpdateTest, WeightedSharedWeightMatchesSequential) {
  auto rows = TestStream(3000, 30.0, 5);
  WeightedSpaceSaving row_by_row(100, 11), batched(100, 11);
  for (uint64_t item : rows) row_by_row.Update(item, 2.5);
  FeedInBatches(rows,
                [&](Span<const uint64_t> b) { batched.UpdateBatch(b, 2.5); });

  EXPECT_DOUBLE_EQ(row_by_row.TotalWeight(), batched.TotalWeight());
  auto ea = row_by_row.Entries(), eb = batched.Entries();
  ASSERT_EQ(ea.size(), eb.size());
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].item, eb[i].item) << "entry " << i;
    EXPECT_DOUBLE_EQ(ea[i].weight, eb[i].weight) << "entry " << i;
  }
}

TEST(BatchUpdateTest, WeightedPerRowWeightsMatchSequential) {
  auto rows = TestStream(2000, 20.0, 6);
  std::vector<double> weights(rows.size());
  Rng rng(99);
  for (double& w : weights) w = 0.5 + 4.0 * rng.NextDouble();

  WeightedSpaceSaving row_by_row(80, 13), batched(80, 13);
  for (size_t i = 0; i < rows.size(); ++i) {
    row_by_row.Update(rows[i], weights[i]);
  }
  // Row-aligned batches of uneven sizes.
  static const size_t kSizes[] = {5, 113, 1, 256, 77};
  size_t pos = 0, s = 0;
  while (pos < rows.size()) {
    size_t len = kSizes[s % 5];
    if (len > rows.size() - pos) len = rows.size() - pos;
    batched.UpdateBatch(Span<const uint64_t>(rows.data() + pos, len),
                        Span<const double>(weights.data() + pos, len));
    pos += len;
    ++s;
  }

  EXPECT_DOUBLE_EQ(row_by_row.TotalWeight(), batched.TotalWeight());
  auto ea = row_by_row.Entries(), eb = batched.Entries();
  ASSERT_EQ(ea.size(), eb.size());
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].item, eb[i].item) << "entry " << i;
    EXPECT_DOUBLE_EQ(ea[i].weight, eb[i].weight) << "entry " << i;
  }
}

TEST(BatchUpdateTest, DecayedEpochBatchesMatchSequential) {
  auto rows = TestStream(1500, 15.0, 7);
  DecayedSpaceSaving row_by_row(60, 100.0, 17), batched(60, 100.0, 17);
  // Three epochs at increasing timestamps.
  const double times[] = {10.0, 250.0, 900.0};
  const size_t third = rows.size() / 3;
  for (int e = 0; e < 3; ++e) {
    const size_t begin = e * third;
    const size_t end = e == 2 ? rows.size() : begin + third;
    for (size_t i = begin; i < end; ++i) {
      row_by_row.Update(rows[i], times[e], 1.5);
    }
    batched.UpdateBatch(
        Span<const uint64_t>(rows.data() + begin, end - begin), times[e], 1.5);
  }
  const double q = 1000.0;
  EXPECT_DOUBLE_EQ(row_by_row.TotalDecayedWeight(q),
                   batched.TotalDecayedWeight(q));
  auto ea = row_by_row.DecayedEntries(q), eb = batched.DecayedEntries(q);
  ASSERT_EQ(ea.size(), eb.size());
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].item, eb[i].item) << "entry " << i;
    EXPECT_DOUBLE_EQ(ea[i].weight, eb[i].weight) << "entry " << i;
  }
}

TEST(BatchUpdateTest, MultiMetricMatchesSequential) {
  auto rows = TestStream(1200, 12.0, 8);
  MultiMetricSpaceSaving row_by_row(50, 2, 23), batched(50, 2, 23);
  const std::vector<double> metrics = {1.0, 0.25};
  for (uint64_t item : rows) row_by_row.Update(item, 1.0, metrics);
  FeedInBatches(rows, [&](Span<const uint64_t> b) {
    batched.UpdateBatch(b, 1.0, metrics);
  });

  EXPECT_DOUBLE_EQ(row_by_row.TotalPrimary(), batched.TotalPrimary());
  ASSERT_EQ(row_by_row.size(), batched.size());
  const auto& ba = row_by_row.bins();
  const auto& bb = batched.bins();
  for (size_t i = 0; i < ba.size(); ++i) {
    EXPECT_EQ(ba[i].item, bb[i].item) << "bin " << i;
    EXPECT_DOUBLE_EQ(ba[i].primary, bb[i].primary) << "bin " << i;
    for (size_t k = 0; k < 2; ++k) {
      EXPECT_DOUBLE_EQ(ba[i].metrics[k], bb[i].metrics[k]) << "bin " << i;
    }
  }
}

TEST(BatchUpdateTest, PipelinedLargeSketchPathMatchesSequential) {
  // Sketches with >= 65536 bins dispatch to PipelinedUpdateBatch (the
  // lookahead/staleness-validation path); everything smaller takes the
  // simple loop, so this test is the only equivalence coverage the
  // pipelined path gets. The stream interleaves repeats at distances
  // shorter than the pipeline's lookahead window — including immediate
  // duplicates of previously-unseen items — to force stale "untracked"
  // verdicts (the adopted-ring redo) and stale positions (labels moved
  // or evicted between lookup and apply).
  constexpr size_t kCapacity = 65536;
  // More distinct items than bins, so the sketch fills and the eviction /
  // Bernoulli branches run; small per-item counts keep the min range wide.
  auto base = TestStream(200000, 1.0, 9);
  std::vector<uint64_t> rows;
  rows.reserve(base.size() * 2);
  Rng dup(77);
  for (size_t i = 0; i < base.size(); ++i) {
    rows.push_back(base[i]);
    // Echo a recent row at a random in-window distance ~half the time.
    if (dup.NextBernoulli(0.5)) {
      size_t back = static_cast<size_t>(dup.NextBounded(8)) + 1;
      rows.push_back(base[i >= back ? i - back : 0]);
    }
  }

  for (LabelPolicy policy :
       {LabelPolicy::kUnbiased, LabelPolicy::kDeterministic}) {
    SpaceSavingCore row_by_row(kCapacity, policy, 1234);
    SpaceSavingCore batched(kCapacity, policy, 1234);
    for (uint64_t item : rows) row_by_row.Update(item);
    FeedInBatches(rows,
                  [&](Span<const uint64_t> b) { batched.UpdateBatch(b); });

    EXPECT_EQ(row_by_row.TotalCount(), batched.TotalCount());
    EXPECT_EQ(row_by_row.MinCount(), batched.MinCount());
    auto ea = row_by_row.Entries(), eb = batched.Entries();
    ASSERT_EQ(ea.size(), eb.size());
    for (size_t i = 0; i < ea.size(); ++i) {
      ASSERT_EQ(ea[i].item, eb[i].item) << "entry " << i;
      ASSERT_EQ(ea[i].count, eb[i].count) << "entry " << i;
    }

    // RNG alignment: continue both row-by-row and they must stay equal.
    for (uint64_t item = 1; item <= 50000; ++item) {
      row_by_row.Update(item * 31);
      batched.Update(item * 31);
    }
    EXPECT_EQ(row_by_row.MinCount(), batched.MinCount());
    auto fa = row_by_row.Entries(), fb = batched.Entries();
    ASSERT_EQ(fa.size(), fb.size());
    for (size_t i = 0; i < fa.size(); ++i) {
      ASSERT_EQ(fa[i].item, fb[i].item) << "entry " << i;
      ASSERT_EQ(fa[i].count, fb[i].count) << "entry " << i;
    }
  }
}

TEST(BatchUpdateTest, EmptyAndSingletonBatchesAreNoOpsOrOneRow) {
  UnbiasedSpaceSaving sketch(16, 3);
  sketch.UpdateBatch(Span<const uint64_t>());
  EXPECT_EQ(sketch.TotalCount(), 0);
  uint64_t one = 7;
  sketch.UpdateBatch(Span<const uint64_t>(&one, 1));
  EXPECT_EQ(sketch.TotalCount(), 1);
  EXPECT_EQ(sketch.EstimateCount(7), 1);
}

}  // namespace
}  // namespace dsketch
