// Request tracing and flight recorder (obs/trace.h): ring exactness
// including wraparound, concurrent producers (the tsan job runs this
// suite), span nesting and the pending-trace hand-off, sampling policy,
// and golden-pinned exporter output. The fatal-path test is a death
// test (the suite registers with the threadsafe death-test style).

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "util/logging.h"

namespace dsketch {
namespace obs {
namespace {

Span MakeSpan(const char* name, TraceLayer layer, uint64_t trace_id,
              uint32_t span_id, uint32_t parent_id, uint64_t start_us,
              uint64_t end_us) {
  Span span;
  span.name = name;
  span.layer = layer;
  span.trace_id = trace_id;
  span.span_id = span_id;
  span.parent_id = parent_id;
  span.start_us = start_us;
  span.end_us = end_us;
  return span;
}

TEST(TraceTest, LayerNamesAreStable) {
  EXPECT_STREQ(TraceLayerName(TraceLayer::kService), "service");
  EXPECT_STREQ(TraceLayerName(TraceLayer::kShard), "shard");
  EXPECT_STREQ(TraceLayerName(TraceLayer::kWindow), "window");
  EXPECT_STREQ(TraceLayerName(TraceLayer::kQuery), "query");
  EXPECT_STREQ(TraceLayerName(TraceLayer::kWire), "wire");
}

TEST(TraceTest, TraceIdFromRequestIdIsStableNonzeroAndSpreads) {
  EXPECT_EQ(TraceIdFromRequestId(1), TraceIdFromRequestId(1));
  EXPECT_NE(TraceIdFromRequestId(1), TraceIdFromRequestId(2));
  // Sequential request ids must land far apart (the splitmix orbit),
  // and no input may map to the reserved 0.
  for (uint64_t id = 0; id < 1000; ++id) {
    EXPECT_NE(TraceIdFromRequestId(id), 0u);
  }
}

TEST(FlightRecorderTest, RecordsAndDumpsOldestFirst) {
  FlightRecorder recorder(8);
  Span span = MakeSpan("alpha", TraceLayer::kShard, 0xabc, 2, 1, 10, 25);
  span.annotations[0] = {"rows", 512};
  span.num_annotations = 1;
  recorder.Record(span);
  recorder.Record(MakeSpan("beta", TraceLayer::kQuery, 0xabc, 3, 1, 26, 30));

  std::vector<Span> spans = recorder.Dump();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_STREQ(spans[0].name, "alpha");
  EXPECT_EQ(spans[0].layer, TraceLayer::kShard);
  EXPECT_EQ(spans[0].trace_id, 0xabcu);
  EXPECT_EQ(spans[0].span_id, 2u);
  EXPECT_EQ(spans[0].parent_id, 1u);
  EXPECT_EQ(spans[0].start_us, 10u);
  EXPECT_EQ(spans[0].end_us, 25u);
  ASSERT_EQ(spans[0].num_annotations, 1u);
  EXPECT_STREQ(spans[0].annotations[0].key, "rows");
  EXPECT_EQ(spans[0].annotations[0].value, 512u);
  EXPECT_STREQ(spans[1].name, "beta");
  EXPECT_EQ(recorder.recorded(), 2u);
  EXPECT_EQ(recorder.dropped(), 0u);
}

TEST(FlightRecorderTest, WraparoundKeepsExactlyTheNewest) {
  FlightRecorder recorder(4);
  for (uint64_t i = 0; i < 6; ++i) {
    recorder.Record(MakeSpan("span", TraceLayer::kService, i, 1, 0, i, i + 1));
  }
  std::vector<Span> spans = recorder.Dump();
  // Exactly the capacity survives, oldest-first, and it is exactly the
  // newest four records — 2, 3, 4, 5.
  ASSERT_EQ(spans.size(), 4u);
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].trace_id, i + 2) << "slot " << i;
    EXPECT_EQ(spans[i].start_us, i + 2) << "slot " << i;
  }
  EXPECT_EQ(recorder.recorded(), 6u);
  EXPECT_EQ(recorder.dropped(), 2u);
}

TEST(FlightRecorderTest, ConcurrentProducersNeverTearASlot) {
  // The tsan job runs this: 4 producers race a reader over a small ring.
  // Every dumped span must be internally consistent (all fields from
  // one Record call — trace_id, span_id, start, end carry one value).
  FlightRecorder recorder(64);
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 5000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const Span& span : recorder.Dump()) {
        const uint64_t v = span.trace_id;
        ASSERT_STREQ(span.name, "race");
        ASSERT_EQ(span.span_id, static_cast<uint32_t>(v % 1000));
        ASSERT_EQ(span.start_us, v);
        ASSERT_EQ(span.end_us, v + 7);
        ASSERT_EQ(span.num_annotations, 1u);
        ASSERT_EQ(span.annotations[0].value, v * 3);
      }
    }
  });
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&recorder, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const uint64_t v = static_cast<uint64_t>(t) * kPerThread + i;
        Span span = MakeSpan("race", TraceLayer::kShard, v,
                             static_cast<uint32_t>(v % 1000), 1, v, v + 7);
        span.annotations[0] = {"v3", v * 3};
        span.num_annotations = 1;
        recorder.Record(span);
      }
    });
  }
  for (std::thread& p : producers) p.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(recorder.recorded(), kThreads * kPerThread);
  EXPECT_EQ(recorder.dropped(), kThreads * kPerThread - 64);
}

#ifndef DSKETCH_NO_METRICS

// Sampling state is process-global; every test sets its own policy and
// turns sampling back off on exit.
class ScopedTraceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FlushPendingTrace();
    TraceCollector::Global().Configure(TraceConfig{});
  }

  static uint64_t Captured() {
    return TraceCollector::Global().traces_captured();
  }
};

TEST_F(ScopedTraceTest, CapturesNestedSpanTreeWithRetroactiveTraceId) {
  TraceCollector::Global().Configure({/*sample_every=*/1,
                                      /*slow_request_us=*/0});
  const uint64_t want_id = TraceIdFromRequestId(7);
  {
    ScopedTrace trace("request");
    {
      ScopedSpan outer("outer", TraceLayer::kShard);
      ScopedSpan inner("inner", TraceLayer::kShard);
    }
    // The children above already closed: SetTraceId must retag them.
    trace.SetTraceId(want_id);
    ScopedSpan sibling("sibling", TraceLayer::kQuery);
    sibling.Annotate("k", 42);
  }
  FlushPendingTrace();

  std::vector<TraceRecord> recent = TraceCollector::Global().Recent();
  ASSERT_FALSE(recent.empty());
  const TraceRecord& record = recent.back();
  EXPECT_EQ(record.trace_id, want_id);
  // Children close before the root: inner, outer, sibling, then root.
  ASSERT_EQ(record.spans.size(), 4u);
  EXPECT_STREQ(record.spans[0].name, "inner");
  EXPECT_EQ(record.spans[0].span_id, 3u);
  EXPECT_EQ(record.spans[0].parent_id, 2u);
  EXPECT_STREQ(record.spans[1].name, "outer");
  EXPECT_EQ(record.spans[1].span_id, 2u);
  EXPECT_EQ(record.spans[1].parent_id, 1u);
  EXPECT_STREQ(record.spans[2].name, "sibling");
  EXPECT_EQ(record.spans[2].span_id, 4u);
  EXPECT_EQ(record.spans[2].parent_id, 1u);
  ASSERT_EQ(record.spans[2].num_annotations, 1u);
  EXPECT_EQ(record.spans[2].annotations[0].value, 42u);
  EXPECT_STREQ(record.spans[3].name, "request");
  EXPECT_EQ(record.spans[3].span_id, 1u);
  EXPECT_EQ(record.spans[3].parent_id, 0u);
  for (const Span& span : record.spans) {
    EXPECT_EQ(span.trace_id, want_id);
    EXPECT_GE(span.end_us, span.start_us);
  }
}

TEST_F(ScopedTraceTest, PostTraceSpanJoinsTheStagedTrace) {
  TraceCollector::Global().Configure({/*sample_every=*/1,
                                      /*slow_request_us=*/0});
  {
    ScopedTrace trace("request");
  }
  // The trace closed but has not been flushed: a new span (the serve
  // loop's response write) must attach as a child of its root.
  {
    ScopedSpan write("response_write", TraceLayer::kWire);
  }
  FlushPendingTrace();

  std::vector<TraceRecord> recent = TraceCollector::Global().Recent();
  ASSERT_FALSE(recent.empty());
  const TraceRecord& record = recent.back();
  ASSERT_EQ(record.spans.size(), 2u);
  EXPECT_STREQ(record.spans[0].name, "request");
  EXPECT_STREQ(record.spans[1].name, "response_write");
  EXPECT_EQ(record.spans[1].parent_id, 1u);
  EXPECT_EQ(record.spans[1].trace_id, record.trace_id);
}

TEST_F(ScopedTraceTest, ReentrantRootDegradesToNothing) {
  TraceCollector::Global().Configure({/*sample_every=*/1,
                                      /*slow_request_us=*/0});
  {
    ScopedTrace trace("request");
    ScopedTrace nested("inner_request");  // must not corrupt the outer
  }
  FlushPendingTrace();
  std::vector<TraceRecord> recent = TraceCollector::Global().Recent();
  ASSERT_FALSE(recent.empty());
  ASSERT_EQ(recent.back().spans.size(), 1u);
  EXPECT_STREQ(recent.back().spans[0].name, "request");
}

TEST_F(ScopedTraceTest, EveryNthSamplingKeepsExactlyTheNth) {
  TraceCollector::Global().Configure({/*sample_every=*/2,
                                      /*slow_request_us=*/0});
  const uint64_t before = Captured();
  for (int i = 0; i < 4; ++i) {
    { ScopedTrace trace("request"); }
    FlushPendingTrace();
  }
  EXPECT_EQ(Captured() - before, 2u);
}

TEST_F(ScopedTraceTest, TailSamplingKeepsSlowRequestsOnly) {
  TraceCollector::Global().Configure({/*sample_every=*/0,
                                      /*slow_request_us=*/1});
  const uint64_t before = Captured();
  {
    ScopedTrace trace("slow_request");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  FlushPendingTrace();
  EXPECT_EQ(Captured() - before, 1u);

  // A threshold far above any test-machine hiccup: the fast request
  // must not be kept.
  TraceCollector::Global().Configure({/*sample_every=*/0,
                                      /*slow_request_us=*/3600000000});
  const uint64_t before_fast = Captured();
  { ScopedTrace trace("fast_request"); }
  FlushPendingTrace();
  EXPECT_EQ(Captured() - before_fast, 0u);
}

TEST_F(ScopedTraceTest, SamplingOffCapturesNothing) {
  TraceCollector::Global().Configure(TraceConfig{});
  const uint64_t before = Captured();
  {
    ScopedTrace trace("request");
    ScopedSpan span("child", TraceLayer::kShard);
  }
  FlushPendingTrace();
  EXPECT_EQ(Captured() - before, 0u);
}

TEST_F(ScopedTraceTest, AnnotationsCapAtSpanLimit) {
  TraceCollector::Global().Configure({/*sample_every=*/1,
                                      /*slow_request_us=*/0});
  {
    ScopedTrace trace("request");
    for (uint64_t i = 0; i < Span::kMaxAnnotations + 3; ++i) {
      trace.Annotate("k", i);
    }
  }
  FlushPendingTrace();
  std::vector<TraceRecord> recent = TraceCollector::Global().Recent();
  ASSERT_FALSE(recent.empty());
  const Span& root = recent.back().spans.back();
  EXPECT_EQ(root.num_annotations, Span::kMaxAnnotations);
  // The first kMaxAnnotations survive; extras are dropped, not wrapped.
  EXPECT_EQ(root.annotations[Span::kMaxAnnotations - 1].value,
            Span::kMaxAnnotations - 1);
}

#endif  // DSKETCH_NO_METRICS

TEST(TraceExportTest, ChromeJsonMatchesGolden) {
  TraceRecord record;
  record.trace_id = 0x0123456789abcdefULL;
  record.spans.push_back(MakeSpan("frame_decode", TraceLayer::kWire,
                                  record.trace_id, 2, 1, 110, 120));
  Span root = MakeSpan("request", TraceLayer::kService, record.trace_id, 1, 0,
                       100, 250);
  root.annotations[0] = {"opcode", 3};
  root.num_annotations = 1;
  record.spans.push_back(root);

  // Pinned byte-for-byte: Perfetto/chrome://tracing load this format,
  // so a drift here is a consumer-visible change.
  const std::string expected =
      "{\"traceEvents\":[\n"
      "{\"name\":\"frame_decode\",\"cat\":\"wire\",\"ph\":\"X\",\"ts\":110,"
      "\"dur\":10,\"pid\":0,\"tid\":0,\"args\":{\"trace_id\":"
      "\"0123456789abcdef\",\"span\":2,\"parent\":1}},\n"
      "{\"name\":\"request\",\"cat\":\"service\",\"ph\":\"X\",\"ts\":100,"
      "\"dur\":150,\"pid\":0,\"tid\":0,\"args\":{\"trace_id\":"
      "\"0123456789abcdef\",\"span\":1,\"parent\":0,\"opcode\":3}}\n"
      "],\"displayTimeUnit\":\"ms\"}\n";
  EXPECT_EQ(TraceToChromeJson({record}), expected);

  // A second trace lands on its own tid so requests render as separate
  // Perfetto tracks.
  const std::string two = TraceToChromeJson({record, record});
  EXPECT_NE(two.find("\"tid\":1"), std::string::npos);
}

TEST(TraceExportTest, TextDumpsMatchGolden) {
  TraceRecord record;
  record.trace_id = 0x0123456789abcdefULL;
  Span span = MakeSpan("shard_drain", TraceLayer::kShard, record.trace_id, 2,
                       1, 110, 125);
  span.annotations[0] = {"rows", 4096};
  span.num_annotations = 1;
  record.spans.push_back(span);

  EXPECT_EQ(TraceToText({record}),
            "trace 0123456789abcdef (1 spans)\n"
            "  shard:shard_drain 110..125us (15us) span=2 parent=1 "
            "rows=4096\n");
  EXPECT_EQ(SpansToText(record.spans),
            "[0123456789abcdef] shard:shard_drain 110..125us (15us) "
            "span=2 parent=1 rows=4096\n");
  EXPECT_EQ(TraceToText({}), "");
  EXPECT_EQ(SpansToText({}), "");
}

TEST(TraceExportTest, EmptyChromeJsonIsStillWellFormed) {
  const std::string json = TraceToChromeJson({});
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST(TraceFatalTest, CheckFailureDumpsFlightRecorder) {
  // The hook dumps the ring to stderr after the CHECK message, before
  // the abort — a crash leaves a postmortem naming the last spans.
  EXPECT_DEATH(
      {
        InstallTraceFatalHandlers();
        FlightRecorder::Global().Record(MakeSpan(
            "doomed_span", TraceLayer::kService, 0x42, 1, 0, 5, 9));
        DSKETCH_CHECK(1 == 2);
      },
      "dsketch flight recorder: last");
}

}  // namespace
}  // namespace obs
}  // namespace dsketch
