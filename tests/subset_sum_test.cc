// Tests for core/subset_sum: unbiased subset estimates, the eq. 5
// variance estimator's upward bias, and confidence interval coverage
// (paper §6.4-6.5, Figs. 8-9).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "core/subset_sum.h"
#include "core/unbiased_space_saving.h"
#include "stats/normal.h"
#include "stats/summary.h"
#include "stats/welford.h"
#include "stream/distributions.h"
#include "stream/generators.h"
#include "test_scale.h"
#include "util/random.h"

namespace dsketch {
namespace {

TEST(SubsetSumTest, AdditiveDecomposition) {
  UnbiasedSpaceSaving sketch(16, 1);
  Rng rng(140);
  for (int i = 0; i < 10000; ++i) sketch.Update(rng.NextBounded(200));
  auto all = EstimateSubsetSum(sketch, [](uint64_t) { return true; });
  auto even = EstimateSubsetSum(sketch, [](uint64_t x) { return x % 2 == 0; });
  auto odd = EstimateSubsetSum(sketch, [](uint64_t x) { return x % 2 == 1; });
  EXPECT_NEAR(all.estimate, even.estimate + odd.estimate, 1e-9);
  EXPECT_NEAR(all.estimate, 10000.0, 1e-9);  // total preserved
}

TEST(SubsetSumTest, SetOverloadMatchesPredicate) {
  UnbiasedSpaceSaving sketch(8, 2);
  for (int i = 0; i < 500; ++i) sketch.Update(i % 20);
  std::unordered_set<uint64_t> subset{1, 3, 5};
  auto a = EstimateSubsetSum(sketch, subset);
  auto b = EstimateSubsetSum(
      sketch, [](uint64_t x) { return x == 1 || x == 3 || x == 5; });
  EXPECT_EQ(a.estimate, b.estimate);
  EXPECT_EQ(a.items_in_sample, b.items_in_sample);
  EXPECT_EQ(a.variance, b.variance);
}

TEST(SubsetSumTest, VarianceFollowsEquationFive) {
  UnbiasedSpaceSaving sketch(4, 3);
  sketch.core().LoadEntries({{1, 10}, {2, 20}, {3, 30}, {4, 40}});
  // MinCount = 10; subset {2,3}: C_S = 2.
  auto est = EstimateSubsetSum(
      sketch, [](uint64_t x) { return x == 2 || x == 3; });
  EXPECT_EQ(est.estimate, 50.0);
  EXPECT_EQ(est.items_in_sample, 2u);
  EXPECT_EQ(est.variance, 100.0 * 2);
  // Empty subset: C_S floored at 1.
  auto none = EstimateSubsetSum(sketch, [](uint64_t) { return false; });
  EXPECT_EQ(none.estimate, 0.0);
  EXPECT_EQ(none.variance, 100.0);
}

TEST(SubsetSumTest, ConfidenceIntervalWidthScalesWithZ) {
  SubsetSumEstimate est;
  est.estimate = 100.0;
  est.variance = 25.0;
  Interval ci95 = est.Confidence(0.95);
  Interval ci99 = est.Confidence(0.99);
  EXPECT_NEAR(ci95.Width(), 2 * 1.959963984540054 * 5.0, 1e-9);
  EXPECT_GT(ci99.Width(), ci95.Width());
  EXPECT_TRUE(ci95.Contains(100.0));
  EXPECT_NEAR((ci95.lo + ci95.hi) / 2, 100.0, 1e-12);
}

TEST(SubsetSumTest, SubsetEstimatesUnbiasedOnSkewedStream) {
  auto counts = WeibullCounts(150, 100.0, 0.45);
  // Subset = every third item.
  double truth = 0;
  for (size_t i = 0; i < counts.size(); i += 3) {
    truth += static_cast<double>(counts[i]);
  }
  Welford est;
  const int trials = test::ScaledTrials(600);  // 10x under the slow label
  for (int t = 0; t < trials; ++t) {
    Rng rng(60000 + t);
    auto rows = PermutedStream(counts, rng);
    UnbiasedSpaceSaving sketch(20, 70000 + t);
    for (uint64_t item : rows) sketch.Update(item);
    est.Add(EstimateSubsetSum(sketch, [](uint64_t x) {
              return x % 3 == 0;
            }).estimate);
  }
  EXPECT_NEAR(est.mean(), truth, 5 * est.stderr_mean());
}

TEST(SubsetSumTest, VarianceEstimatorIsUpwardBiased) {
  // Paper §6.4: the eq. 5 estimate is an overestimate, checked against the
  // Monte Carlo variance on a pathological sorted stream.
  auto counts = WeibullCounts(200, 50.0, 0.5);
  auto rows = SortedStream(counts, /*ascending=*/true);
  Welford est;
  Welford var_estimates;
  const int trials = test::ScaledTrials(400);  // 10x under the slow label
  for (int t = 0; t < trials; ++t) {
    UnbiasedSpaceSaving sketch(25, 80000 + t);
    for (uint64_t item : rows) sketch.Update(item);
    auto r = EstimateSubsetSum(sketch, [](uint64_t x) { return x < 100; });
    est.Add(r.estimate);
    var_estimates.Add(r.variance);
  }
  // Mean estimated variance should be at least the realized variance.
  // The realized (sample) variance has relative sd ~ sqrt(2/(n-1)), so
  // the slack scales with the trial count: ~15% at the full-strength
  // 4000 trials (the seed's tolerance), wider at the fast default.
  const double slack = std::max(0.15, 0.05 + 3 * std::sqrt(2.0 / (trials - 1)));
  EXPECT_GE(var_estimates.mean(), (1.0 - slack) * est.variance());
}

TEST(SubsetSumTest, CoverageNearNominalOnLargeSubsets) {
  // Paper Fig. 8: normal CIs achieve ~advertised coverage whenever the
  // subset holds enough sampled items for the CLT.
  auto counts = WeibullCounts(400, 40.0, 0.5);
  double truth = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (i % 2 == 0) truth += static_cast<double>(counts[i]);
  }
  CoverageCounter coverage;
  const int trials = test::ScaledTrials(300);  // 10x under the slow label
  for (int t = 0; t < trials; ++t) {
    Rng rng(90000 + t);
    auto rows = PermutedStream(counts, rng);
    UnbiasedSpaceSaving sketch(50, 95000 + t);
    for (uint64_t item : rows) sketch.Update(item);
    auto r = EstimateSubsetSum(sketch, [](uint64_t x) { return x % 2 == 0; });
    Interval ci = r.Confidence(0.95);
    coverage.Add(ci.lo, ci.hi, truth);
  }
  // Upward-biased variance => coverage at or above ~0.95. The threshold
  // allows 3 binomial sigmas below nominal, which reproduces the seed's
  // 0.93 at the full-strength 3000 trials and widens at the fast default.
  EXPECT_GE(coverage.coverage(),
            0.942 - 3 * std::sqrt(0.95 * 0.05 / trials));
}

TEST(SubsetSumTest, EntriesOverloadMatchesSketchOverload) {
  UnbiasedSpaceSaving sketch(8, 4);
  for (int i = 0; i < 3000; ++i) sketch.Update(i % 50);
  auto direct = EstimateSubsetSum(sketch, [](uint64_t x) { return x < 25; });
  auto via_entries = EstimateSubsetSumFromEntries(
      sketch.Entries(), sketch.MinCount(),
      [](uint64_t x) { return x < 25; });
  EXPECT_EQ(direct.estimate, via_entries.estimate);
  EXPECT_EQ(direct.variance, via_entries.variance);
}

}  // namespace
}  // namespace dsketch
