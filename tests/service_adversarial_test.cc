// Adversarial hardening for the service protocol, mirroring the wire
// decoder sweep (wire_adversarial_test): truncation at every byte,
// an exhaustive single-bit-flip sweep, hostile length prefixes and
// oversized batch/top-k/predicate claims, and unknown opcodes. The
// contract under attack: SketchServer::HandleRequest answers *every*
// payload with a well-formed response — error status, never a crash,
// over-read, or forced allocation — and the frame layer rejects hostile
// prefixes before allocating. CI runs this suite under asan+ubsan on
// every push.

#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/serialization.h"
#include "core/unbiased_space_saving.h"
#include "query/attribute_table.h"
#include "service/frame.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/transport.h"
#include "window/window_wire.h"
#include "wire/varint.h"

namespace dsketch {
namespace {

SketchServerOptions SmallOptions() {
  SketchServerOptions options;
  options.shard.num_shards = 2;
  options.shard.shard_capacity = 128;
  options.shard.seed = 3;
  options.merged_capacity = 256;
  options.seed = 3;
  return options;
}

// One well-formed request per opcode (weighted ingest included), so the
// sweeps cover every handler's decode path.
std::vector<std::pair<std::string, std::string>> AllRequests() {
  std::vector<std::pair<std::string, std::string>> out;
  IngestBatchRequest unit;
  unit.items = {5, 6, 7, 8, 5, 6, 1000000};
  out.emplace_back("ingest", EncodeIngestBatchRequest(1, unit));
  IngestBatchRequest weighted = unit;
  weighted.weights = {1.0, 2.0, 0.5, 4.0, 1.5, 2.5, 3.5};
  out.emplace_back("ingest_weighted", EncodeIngestBatchRequest(2, weighted));
  IngestBatchRequest windowed = unit;
  windowed.windowed = true;
  windowed.epoch = 2;
  out.emplace_back("ingest_windowed", EncodeIngestBatchRequest(10, windowed));
  QuerySumRequest sum;
  sum.where.WhereEq(0, 2).WhereIn(1, {1, 2, 3});
  out.emplace_back("query_sum", EncodeQuerySumRequest(3, sum));
  QuerySumRequest win_sum;
  win_sum.scope = QueryScope::kWindow;
  win_sum.last_k = 2;
  out.emplace_back("query_sum_window", EncodeQuerySumRequest(11, win_sum));
  QueryTopKRequest topk;
  topk.k = 10;
  out.emplace_back("query_topk", EncodeQueryTopKRequest(4, topk));
  QueryTopKRequest win_topk;
  win_topk.scope = QueryScope::kWindow;
  win_topk.k = 5;
  win_topk.last_k = 1;
  out.emplace_back("query_topk_window", EncodeQueryTopKRequest(12, win_topk));
  QueryGroupByRequest group;
  group.dim1 = 0;
  group.has_dim2 = true;
  group.dim2 = 1;
  out.emplace_back("query_groupby", EncodeQueryGroupByRequest(5, group));
  SnapshotRequest snap;
  out.emplace_back("snapshot", EncodeSnapshotRequest(6, snap));
  RestoreRequest restore;
  UnbiasedSpaceSaving sketch(16, 9);
  for (int i = 0; i < 100; ++i) sketch.Update(static_cast<uint64_t>(i % 20));
  restore.blob = Serialize(sketch);
  out.emplace_back("restore", EncodeRestoreRequest(7, restore));
  SnapshotRequest win_snap;
  win_snap.scope = QueryScope::kWindow;
  out.emplace_back("snapshot_window", EncodeSnapshotRequest(13, win_snap));
  RestoreRequest win_restore;
  win_restore.scope = QueryScope::kWindow;
  WindowedSketchOptions wopt;
  wopt.window_epochs = 2;
  wopt.epoch_capacity = 16;
  wopt.merged_capacity = 32;
  wopt.seed = 14;
  WindowedSpaceSaving ring(wopt);
  for (int i = 0; i < 60; ++i) ring.Update(static_cast<uint64_t>(i % 12));
  win_restore.blob = SerializeWindowed(ring);
  out.emplace_back("restore_window", EncodeRestoreRequest(14, win_restore));
  out.emplace_back("stats", EncodeStatsRequest(8));
  MetricsRequest metrics;
  metrics.scope = MetricsScope::kShard;
  out.emplace_back("metrics", EncodeMetricsRequest(15, metrics));
  TraceRequest trace;
  trace.scope = TraceScope::kFlight;
  out.emplace_back("trace", EncodeTraceRequest(16, trace));
  out.emplace_back("shutdown", EncodeShutdownRequest(9));
  return out;
}

// Decodes the response header; every response must carry one.
Status ResponseStatus(std::string_view response) {
  wire::VarintReader reader(response);
  ResponseHeader header;
  EXPECT_TRUE(DecodeResponseHeader(reader, &header))
      << "response without a decodable header";
  return header.status;
}

TEST(ServiceAdversarialTest, IntactRequestsSucceed) {
  AttributeTable attrs(2);
  for (uint64_t i = 0; i < 30; ++i) {
    attrs.AddItem({static_cast<uint32_t>(i % 5),
                   static_cast<uint32_t>(i % 3)});
  }
  SketchServer server(SmallOptions(), &attrs);
  for (const auto& [label, request] : AllRequests()) {
    EXPECT_EQ(ResponseStatus(server.HandleRequest(request)), Status::kOk)
        << label;
  }
}

TEST(ServiceAdversarialTest, EveryTruncationGetsAnErrorResponse) {
  // Counts and lengths travel ahead of their payloads, so no strict
  // prefix of a valid request can itself be valid.
  AttributeTable attrs(2);
  for (uint64_t i = 0; i < 30; ++i) {
    attrs.AddItem({static_cast<uint32_t>(i % 5),
                   static_cast<uint32_t>(i % 3)});
  }
  SketchServer server(SmallOptions(), &attrs);
  for (const auto& [label, request] : AllRequests()) {
    for (size_t cut = 0; cut < request.size(); ++cut) {
      std::string response =
          server.HandleRequest(std::string_view(request.data(), cut));
      EXPECT_NE(ResponseStatus(response), Status::kOk)
          << label << " cut at " << cut;
    }
  }
}

TEST(ServiceAdversarialTest, SingleBitFlipsNeverCrashTheServer) {
  // A flipped bit may still decode (an item label, a request id); the
  // contract is a well-formed response every time, no aborts — asan and
  // ubsan make any violation fatal in CI.
  SketchServer server(SmallOptions());
  size_t still_ok = 0;
  for (const auto& [label, request] : AllRequests()) {
    std::string tampered = request;
    for (size_t i = 0; i < tampered.size(); ++i) {
      for (int bit = 0; bit < 8; ++bit) {
        tampered[i] = static_cast<char>(tampered[i] ^ (1 << bit));
        std::string response = server.HandleRequest(tampered);
        wire::VarintReader reader(response);
        ResponseHeader header;
        ASSERT_TRUE(DecodeResponseHeader(reader, &header))
            << label << " byte " << i << " bit " << bit;
        if (header.status == Status::kOk) ++still_ok;
        tampered[i] = request[i];  // restore
      }
    }
  }
  SUCCEED() << still_ok << " tampered requests still executed cleanly";
}

TEST(ServiceAdversarialTest, HostileMetricsRequestsGetCleanErrors) {
  SketchServer server(SmallOptions());
  auto request_with = [](const std::function<void(wire::VarintWriter&)>& body) {
    std::string out;
    wire::VarintWriter w(out);
    w.PutByte(kProtocolVersion);
    w.PutByte(static_cast<uint8_t>(Opcode::kMetrics));
    w.PutVarint(31);
    body(w);
    return out;
  };

  // Missing scope byte.
  EXPECT_EQ(ResponseStatus(server.HandleRequest(
                request_with([](wire::VarintWriter&) {}))),
            Status::kMalformed);
  // Every scope byte past the enum, including the extremes.
  for (uint8_t scope : {uint8_t{6}, uint8_t{7}, uint8_t{100}, uint8_t{255}}) {
    EXPECT_EQ(ResponseStatus(server.HandleRequest(
                  request_with([&](wire::VarintWriter& w) {
                    w.PutByte(scope);
                  }))),
              Status::kMalformed)
        << "scope " << static_cast<int>(scope);
  }
  // Trailing garbage after a valid scope: decoders consume exactly.
  EXPECT_EQ(ResponseStatus(server.HandleRequest(
                request_with([](wire::VarintWriter& w) {
                  w.PutByte(0);
                  w.PutVarint(123456);
                }))),
            Status::kMalformed);
  // An oversized-claim response body cannot be provoked (the dump is
  // bounded), but the valid request must still answer kOk afterwards —
  // the hostile traffic above left the server serving.
  EXPECT_EQ(ResponseStatus(server.HandleRequest(
                request_with([](wire::VarintWriter& w) { w.PutByte(0); }))),
            Status::kOk);

  // Response-side: a METRICS response claiming more text than it
  // carries (or more than the cap) is rejected by the client decoder.
  MetricsResponse rsp;
  rsp.text = "dsketch_service_requests_total 1\n";
  std::string wire_rsp = EncodeMetricsResponse(31, rsp);
  {
    wire::VarintReader reader(wire_rsp);
    ResponseHeader header;
    ASSERT_TRUE(DecodeResponseHeader(reader, &header));
    MetricsResponse decoded;
    EXPECT_TRUE(DecodeMetricsResponse(reader, &decoded));
    EXPECT_EQ(decoded.text, rsp.text);
  }
  std::string truncated = wire_rsp.substr(0, wire_rsp.size() - 5);
  {
    wire::VarintReader reader(truncated);
    ResponseHeader header;
    ASSERT_TRUE(DecodeResponseHeader(reader, &header));
    MetricsResponse decoded;
    EXPECT_FALSE(DecodeMetricsResponse(reader, &decoded));
  }
  std::string padded = wire_rsp + "extra";
  {
    wire::VarintReader reader(padded);
    ResponseHeader header;
    ASSERT_TRUE(DecodeResponseHeader(reader, &header));
    MetricsResponse decoded;
    EXPECT_FALSE(DecodeMetricsResponse(reader, &decoded));
  }
}

TEST(ServiceAdversarialTest, HostileTraceRequestsGetCleanErrors) {
  SketchServer server(SmallOptions());
  auto request_with = [](const std::function<void(wire::VarintWriter&)>& body) {
    std::string out;
    wire::VarintWriter w(out);
    w.PutByte(kProtocolVersion);
    w.PutByte(static_cast<uint8_t>(Opcode::kTrace));
    w.PutVarint(47);
    body(w);
    return out;
  };

  // Missing scope byte.
  EXPECT_EQ(ResponseStatus(server.HandleRequest(
                request_with([](wire::VarintWriter&) {}))),
            Status::kMalformed);
  // Every scope byte past the enum, including the extremes.
  for (uint8_t scope : {uint8_t{2}, uint8_t{3}, uint8_t{100}, uint8_t{255}}) {
    EXPECT_EQ(ResponseStatus(server.HandleRequest(
                  request_with([&](wire::VarintWriter& w) {
                    w.PutByte(scope);
                  }))),
              Status::kMalformed)
        << "scope " << static_cast<int>(scope);
  }
  // Trailing garbage after a valid scope: decoders consume exactly.
  EXPECT_EQ(ResponseStatus(server.HandleRequest(
                request_with([](wire::VarintWriter& w) {
                  w.PutByte(0);
                  w.PutVarint(999);
                }))),
            Status::kMalformed);
  // The hostile traffic above left the server serving: both valid
  // scopes still answer kOk.
  for (uint8_t scope : {uint8_t{0}, uint8_t{1}}) {
    EXPECT_EQ(ResponseStatus(server.HandleRequest(
                  request_with([&](wire::VarintWriter& w) {
                    w.PutByte(scope);
                  }))),
              Status::kOk)
        << "scope " << static_cast<int>(scope);
  }

  // Response-side: a TRACE response claiming more text than it carries
  // (or truncated mid-claim) is rejected by the client decoder.
  TraceResponse rsp;
  rsp.text = "trace 0000000000000001 (0 spans)\n";
  std::string wire_rsp = EncodeTraceResponse(47, rsp);
  {
    wire::VarintReader reader(wire_rsp);
    ResponseHeader header;
    ASSERT_TRUE(DecodeResponseHeader(reader, &header));
    TraceResponse decoded;
    EXPECT_TRUE(DecodeTraceResponse(reader, &decoded));
    EXPECT_EQ(decoded.text, rsp.text);
  }
  std::string truncated = wire_rsp.substr(0, wire_rsp.size() - 5);
  {
    wire::VarintReader reader(truncated);
    ResponseHeader header;
    ASSERT_TRUE(DecodeResponseHeader(reader, &header));
    TraceResponse decoded;
    EXPECT_FALSE(DecodeTraceResponse(reader, &decoded));
  }
  std::string padded = wire_rsp + "extra";
  {
    wire::VarintReader reader(padded);
    ResponseHeader header;
    ASSERT_TRUE(DecodeResponseHeader(reader, &header));
    TraceResponse decoded;
    EXPECT_FALSE(DecodeTraceResponse(reader, &decoded));
  }
}

TEST(ServiceAdversarialTest, UnknownOpcodesAndVersionsAreRejected) {
  SketchServer server(SmallOptions());
  // 11 is the first unassigned opcode (10 became TRACE in protocol v5).
  for (uint8_t opcode : {uint8_t{0}, uint8_t{11}, uint8_t{42}, uint8_t{255}}) {
    std::string request;
    wire::VarintWriter w(request);
    w.PutByte(kProtocolVersion);
    w.PutByte(opcode);
    w.PutVarint(77);
    EXPECT_EQ(ResponseStatus(server.HandleRequest(request)),
              Status::kUnknownOpcode)
        << "opcode " << static_cast<int>(opcode);
  }
  // Future protocol version: refused, not misparsed.
  std::string future;
  wire::VarintWriter w(future);
  w.PutByte(kProtocolVersion + 1);
  w.PutByte(static_cast<uint8_t>(Opcode::kStats));
  w.PutVarint(1);
  EXPECT_EQ(ResponseStatus(server.HandleRequest(future)),
            Status::kUnsupported);
  // Empty and garbage payloads (garbage may parse as a header carrying a
  // foreign version byte, which is an equally firm rejection).
  EXPECT_EQ(ResponseStatus(server.HandleRequest("")), Status::kMalformed);
  EXPECT_NE(ResponseStatus(server.HandleRequest("garbage bytes here")),
            Status::kOk);
}

std::string RequestWithBody(Opcode opcode,
                            const std::function<void(wire::VarintWriter&)>& body) {
  std::string out;
  wire::VarintWriter w(out);
  w.PutByte(kProtocolVersion);
  w.PutByte(static_cast<uint8_t>(opcode));
  w.PutVarint(1);
  body(w);
  return out;
}

TEST(ServiceAdversarialTest, HostileBatchAndQueryClaimsAreRejected) {
  SketchServer server(SmallOptions());

  // A maximal claimed row count with almost no bytes behind it: the
  // byte-budget bound must reject before any reserve.
  std::string row_bomb = RequestWithBody(
      Opcode::kIngestBatch, [](wire::VarintWriter& w) {
        w.PutByte(0);
        w.PutVarint(kMaxBatchRows);  // claimed rows
        w.PutVarint(1);              // one lonely byte
      });
  EXPECT_NE(ResponseStatus(server.HandleRequest(row_bomb)), Status::kOk);

  // Row count over the cap (with weights, 9 bytes/row claimed).
  std::string over_cap = RequestWithBody(
      Opcode::kIngestBatch, [](wire::VarintWriter& w) {
        w.PutByte(1);
        w.PutVarint(kMaxBatchRows + 1);
      });
  EXPECT_NE(ResponseStatus(server.HandleRequest(over_cap)), Status::kOk);

  // Non-positive and NaN weights (the sketch would CHECK-fail on them).
  for (double bad : {0.0, -1.0, std::nan("")}) {
    std::string bad_weight = RequestWithBody(
        Opcode::kIngestBatch, [bad](wire::VarintWriter& w) {
          w.PutByte(1);
          w.PutVarint(1);
          w.PutVarint(7);
          w.PutDouble(bad);
        });
    EXPECT_NE(ResponseStatus(server.HandleRequest(bad_weight)), Status::kOk);
  }

  // k = 0 and k beyond the cap.
  for (uint64_t k : {uint64_t{0}, kMaxTopK + 1}) {
    std::string bad_k = RequestWithBody(
        Opcode::kQueryTopK, [k](wire::VarintWriter& w) {
          w.PutByte(0);
          w.PutVarint(k);
        });
    EXPECT_NE(ResponseStatus(server.HandleRequest(bad_k)), Status::kOk);
  }

  // Predicate with a hostile value-count claim.
  std::string pred_bomb = RequestWithBody(
      Opcode::kQuerySum, [](wire::VarintWriter& w) {
        w.PutByte(0);
        w.PutVarint(1);              // one condition
        w.PutVarint(0);              // dim 0
        w.PutVarint(uint64_t{1} << 40);  // claimed values
      });
  EXPECT_NE(ResponseStatus(server.HandleRequest(pred_bomb)), Status::kOk);

  // Restore whose blob length does not match the bytes present, and
  // whose bytes are not a sketch.
  std::string bad_len = RequestWithBody(
      Opcode::kRestore, [](wire::VarintWriter& w) {
        w.PutByte(0);
        w.PutVarint(1000);  // claims 1000 bytes
        w.PutVarint(7);     // provides 1
      });
  EXPECT_NE(ResponseStatus(server.HandleRequest(bad_len)), Status::kOk);
  std::string not_a_sketch = RequestWithBody(
      Opcode::kRestore, [](wire::VarintWriter& w) {
        w.PutByte(0);
        w.PutVarint(4);
        w.PutByte('j');
        w.PutByte('u');
        w.PutByte('n');
        w.PutByte('k');
      });
  EXPECT_EQ(ResponseStatus(server.HandleRequest(not_a_sketch)),
            Status::kBadState);

  // Cross-kind restore: a counts blob fed to the weighted scope decodes
  // as the wrong kind and must be refused, state untouched.
  UnbiasedSpaceSaving sketch(16, 5);
  for (int i = 0; i < 50; ++i) sketch.Update(static_cast<uint64_t>(i % 10));
  std::string counts_blob = Serialize(sketch);
  std::string cross_kind = RequestWithBody(
      Opcode::kRestore, [&counts_blob](wire::VarintWriter& w) {
        w.PutByte(static_cast<uint8_t>(QueryScope::kWeighted));
        w.PutVarint(counts_blob.size());
        for (char c : counts_blob) w.PutByte(static_cast<uint8_t>(c));
      });
  EXPECT_EQ(ResponseStatus(server.HandleRequest(cross_kind)),
            Status::kBadState);

  // Out-of-range scope byte.
  std::string bad_scope = RequestWithBody(
      Opcode::kSnapshot, [](wire::VarintWriter& w) { w.PutByte(7); });
  EXPECT_NE(ResponseStatus(server.HandleRequest(bad_scope)), Status::kOk);

  // Weighted + windowed ingest flags together (3): mutually exclusive.
  std::string both_flags = RequestWithBody(
      Opcode::kIngestBatch, [](wire::VarintWriter& w) {
        w.PutByte(3);
        w.PutVarint(0);  // epoch (were windowed accepted)
        w.PutVarint(1);
        w.PutVarint(7);
        w.PutDouble(1.0);
      });
  EXPECT_NE(ResponseStatus(server.HandleRequest(both_flags)), Status::kOk);

  // Window last_k beyond the ring cap.
  std::string bad_last_k = RequestWithBody(
      Opcode::kQuerySum, [](wire::VarintWriter& w) {
        w.PutByte(static_cast<uint8_t>(QueryScope::kWindow));
        w.PutVarint(kMaxWindowEpochs + 1);
        w.PutVarint(0);  // empty predicate
      });
  EXPECT_NE(ResponseStatus(server.HandleRequest(bad_last_k)), Status::kOk);

  // Epoch stamps beyond the clock cap: rejected at decode, before the
  // ring ever sees them.
  for (uint64_t epoch : {kMaxEpochStamp + 1, ~uint64_t{0}}) {
    std::string epoch_bomb = RequestWithBody(
        Opcode::kIngestBatch, [epoch](wire::VarintWriter& w) {
          w.PutByte(2);  // windowed
          w.PutVarint(epoch);
          w.PutVarint(1);
          w.PutVarint(7);
        });
    EXPECT_NE(ResponseStatus(server.HandleRequest(epoch_bomb)), Status::kOk);
  }
  // The largest accepted stamp is handled promptly — the ring
  // fast-forwards past skipped epochs instead of closing each one (a
  // single frame must not be able to spin the server for 2^62 rounds).
  IngestBatchRequest far_future;
  far_future.windowed = true;
  far_future.epoch = kMaxEpochStamp;
  far_future.items = {7};
  EXPECT_EQ(ResponseStatus(
                server.HandleRequest(EncodeIngestBatchRequest(42, far_future))),
            Status::kOk);

  // Cross-kind restore into the window scope: a flat counts blob is not
  // a ring and must be refused, state untouched.
  UnbiasedSpaceSaving flat(16, 6);
  for (int i = 0; i < 40; ++i) flat.Update(static_cast<uint64_t>(i % 8));
  std::string flat_blob = Serialize(flat);
  std::string flat_into_window = RequestWithBody(
      Opcode::kRestore, [&flat_blob](wire::VarintWriter& w) {
        w.PutByte(static_cast<uint8_t>(QueryScope::kWindow));
        w.PutVarint(flat_blob.size());
        for (char c : flat_blob) w.PutByte(static_cast<uint8_t>(c));
      });
  EXPECT_EQ(ResponseStatus(server.HandleRequest(flat_into_window)),
            Status::kBadState);

  // And the reverse: a ring blob fed to the counts scope.
  WindowedSketchOptions wopt;
  wopt.window_epochs = 2;
  wopt.epoch_capacity = 16;
  wopt.merged_capacity = 32;
  wopt.seed = 8;
  WindowedSpaceSaving ring(wopt);
  for (int i = 0; i < 30; ++i) ring.Update(static_cast<uint64_t>(i % 6));
  std::string ring_blob = SerializeWindowed(ring);
  std::string ring_into_counts = RequestWithBody(
      Opcode::kRestore, [&ring_blob](wire::VarintWriter& w) {
        w.PutByte(static_cast<uint8_t>(QueryScope::kCounts));
        w.PutVarint(ring_blob.size());
        for (char c : ring_blob) w.PutByte(static_cast<uint8_t>(c));
      });
  EXPECT_EQ(ResponseStatus(server.HandleRequest(ring_into_counts)),
            Status::kBadState);

  // After all that hostility, the server still works.
  IngestBatchRequest ok;
  ok.items = {1, 2, 3};
  EXPECT_EQ(ResponseStatus(
                server.HandleRequest(EncodeIngestBatchRequest(50, ok))),
            Status::kOk);
}

TEST(ServiceAdversarialTest, GroupByDimensionBoundsAreChecked) {
  AttributeTable attrs(2);
  for (uint64_t i = 0; i < 10; ++i) {
    attrs.AddItem({static_cast<uint32_t>(i), static_cast<uint32_t>(i % 2)});
  }
  SketchServer server(SmallOptions(), &attrs);
  QueryGroupByRequest group;
  group.dim1 = 99;  // out of range for a 2-dim table
  EXPECT_EQ(ResponseStatus(
                server.HandleRequest(EncodeQueryGroupByRequest(1, group))),
            Status::kMalformed);
  QuerySumRequest sum;
  sum.where.WhereEq(5, 1);  // predicate dim out of range
  EXPECT_EQ(ResponseStatus(server.HandleRequest(EncodeQuerySumRequest(2, sum))),
            Status::kMalformed);
}

TEST(ServiceAdversarialTest, HostileFrameLengthPrefixesDropTheConnection) {
  // Claimed length over the cap: rejected before any allocation.
  {
    InMemoryDuplex duplex;
    const uint32_t huge = 0xFFFFFFFF;
    std::string raw(reinterpret_cast<const char*>(&huge), sizeof(huge));
    ASSERT_TRUE(duplex.client().Write(raw));
    duplex.client().CloseWrite();
    std::string payload;
    EXPECT_EQ(ReadFrame(duplex.server(), &payload), FrameStatus::kMalformed);
  }
  // Truncated length prefix.
  {
    InMemoryDuplex duplex;
    ASSERT_TRUE(duplex.client().Write(std::string_view("\x05\x00", 2)));
    duplex.client().CloseWrite();
    std::string payload;
    EXPECT_EQ(ReadFrame(duplex.server(), &payload), FrameStatus::kMalformed);
  }
  // EOF mid-body: length promises more bytes than ever arrive.
  {
    InMemoryDuplex duplex;
    const uint32_t len = 100;
    std::string raw(reinterpret_cast<const char*>(&len), sizeof(len));
    raw += "only a few bytes";
    ASSERT_TRUE(duplex.client().Write(raw));
    duplex.client().CloseWrite();
    std::string payload;
    EXPECT_EQ(ReadFrame(duplex.server(), &payload), FrameStatus::kMalformed);
  }
  // A serving thread fed a hostile prefix exits instead of wedging.
  {
    InMemoryDuplex duplex;
    SketchServer server(SmallOptions());
    std::thread serve([&] { server.Serve(duplex.server()); });
    const uint32_t huge = 0xFFFFFFFF;
    std::string raw(reinterpret_cast<const char*>(&huge), sizeof(huge));
    ASSERT_TRUE(duplex.client().Write(raw));
    duplex.client().CloseWrite();
    serve.join();  // must terminate
  }
}

}  // namespace
}  // namespace dsketch
