// Dedicated FlatMap coverage for the ingest hot path: backward-shift
// deletion under clustered keys, rehash under load, the reserved-key
// contract, group-probe (AVX2/SSE2) vs scalar-walk equivalence, the
// MmapArray backing and its heap fallback, and the FindBatch /
// position-validity (generation) contract. CI runs this suite under
// AddressSanitizer on every push, so any probe that reads past the slot
// table or any stale-pointer use in the tests themselves is caught.

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "util/flat_map.h"
#include "util/mmap_array.h"
#include "util/random.h"

namespace dsketch {
namespace {

// Restores the process-wide allocator mode on scope exit so tests that
// force heap/mmap backing cannot leak state into later suites.
class ScopedAllocMode {
 public:
  explicit ScopedAllocMode(AllocMode mode) : saved_(GlobalAllocMode()) {
    SetGlobalAllocMode(mode);
  }
  ~ScopedAllocMode() { SetGlobalAllocMode(saved_); }

 private:
  AllocMode saved_;
};

// Keys whose home slots all land inside [0, width) of a map with
// `table_size` slots — the adversarial input for probe clustering and
// backward-shift deletion.
std::vector<uint64_t> ClusteredKeys(size_t count, size_t table_size,
                                    size_t width, uint64_t seed) {
  std::vector<uint64_t> keys;
  Rng rng(seed);
  std::unordered_set<uint64_t> seen;
  while (keys.size() < count) {
    uint64_t k = rng.NextU64();
    if (k == FlatMap<uint32_t>::kEmpty) continue;
    if ((FlatMap<uint32_t>::MixedHash(k) & (table_size - 1)) >= width) {
      continue;
    }
    if (seen.insert(k).second) keys.push_back(k);
  }
  return keys;
}

TEST(FlatMapDeletionTest, BackwardShiftKeepsClusterReachable) {
  // All keys hash into a narrow window of a 64-slot table, forming one
  // long collision cluster; every erase order must leave the survivors
  // reachable (backward-shift deletion has no tombstones to hide bugs).
  FlatMap<uint32_t> map(32);  // pre-sized: 64 slots, no rehash below 33 keys
  ASSERT_EQ(map.TableSize(), 64u);
  std::vector<uint64_t> keys = ClusteredKeys(24, map.TableSize(), 4, 101);
  for (uint32_t i = 0; i < keys.size(); ++i) map.InsertOrAssign(keys[i], i);

  // Erase from the middle outward (worst case for shift correctness).
  std::vector<size_t> order = {12, 11, 13, 0, 23, 5, 18, 7};
  std::unordered_set<uint64_t> erased;
  for (size_t idx : order) {
    EXPECT_TRUE(map.Erase(keys[idx]));
    erased.insert(keys[idx]);
    for (uint32_t i = 0; i < keys.size(); ++i) {
      const uint32_t* v = map.Find(keys[i]);
      if (erased.count(keys[i])) {
        EXPECT_EQ(v, nullptr);
      } else {
        ASSERT_NE(v, nullptr);
        EXPECT_EQ(*v, i);
      }
    }
  }
  EXPECT_EQ(map.size(), keys.size() - order.size());
}

TEST(FlatMapDeletionTest, RandomChurnMatchesReferenceMap) {
  FlatMap<uint32_t> map(64);
  std::unordered_map<uint64_t, uint32_t> ref;
  Rng rng(7);
  // Small key universe so inserts, overwrites, and erases all hit often.
  for (int step = 0; step < 20000; ++step) {
    uint64_t key = rng.NextU64() % 97;
    if (rng.NextDouble() < 0.45) {
      uint32_t value = static_cast<uint32_t>(rng.NextU64());
      map.InsertOrAssign(key, value);
      ref[key] = value;
    } else {
      EXPECT_EQ(map.Erase(key), ref.erase(key) > 0) << "step " << step;
    }
    ASSERT_EQ(map.size(), ref.size()) << "step " << step;
  }
  for (const auto& [key, value] : ref) {
    const uint32_t* v = map.Find(key);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, value);
  }
}

TEST(FlatMapRehashTest, GrowsUnderLoadAndKeepsAllEntries) {
  FlatMap<uint32_t> map(16);
  const size_t start_table = map.TableSize();
  const uint64_t gen0 = map.generation();
  std::unordered_map<uint64_t, uint32_t> ref;
  Rng rng(13);
  for (uint32_t i = 0; i < 50000; ++i) {
    uint64_t key = rng.NextU64();
    if (key == FlatMap<uint32_t>::kEmpty) continue;
    map.InsertOrAssign(key, i);
    ref[key] = i;
  }
  EXPECT_GT(map.TableSize(), start_table);  // several doublings
  EXPECT_GT(map.generation(), gen0);
  EXPECT_EQ(map.size(), ref.size());
  // Load factor invariant survives every rehash.
  EXPECT_LE(map.size() * 2, map.TableSize());
  for (const auto& [key, value] : ref) {
    const uint32_t* v = map.Find(key);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, value);
  }
}

TEST(FlatMapRehashTest, PreSizedMapNeverRehashes) {
  // The contract SpaceSavingCore's backpointers rely on: a map built
  // with FlatMap(n) keeps its table (and generation, absent erases)
  // while at most n keys are present.
  constexpr size_t kCap = 1000;
  FlatMap<uint32_t> map(kCap);
  const size_t table = map.TableSize();
  for (uint32_t i = 0; i < kCap; ++i) map.InsertOrAssign(i, i);
  EXPECT_EQ(map.TableSize(), table);
}

#if DSKETCH_DCHECK_IS_ON
TEST(FlatMapDeathTest, ReservedKeyInsertIsRejected) {
  FlatMap<uint32_t> map(16);
  EXPECT_DEATH(map.InsertOrAssign(FlatMap<uint32_t>::kEmpty, 1),
               "CHECK failed");
}

TEST(FlatMapDeathTest, AssignAtFreePositionIsRejected) {
  FlatMap<uint32_t> map(16);
  map.InsertOrAssign(5, 1);
  size_t pos = map.FindPosHashed(5, FlatMap<uint32_t>::MixedHash(5));
  ASSERT_NE(pos, FlatMap<uint32_t>::kNpos);
  size_t free_pos = (pos + 1) % map.TableSize();
  ASSERT_EQ(map.KeyAtPos(free_pos), FlatMap<uint32_t>::kEmpty);
  EXPECT_DEATH(map.AssignAtPos(free_pos, 2), "CHECK failed");
}

TEST(FlatMapDeathTest, BatchGuardCatchesStructuralChange) {
  FlatMap<uint32_t> map(16);
  map.InsertOrAssign(1, 10);
  FlatMap<uint32_t>::BatchGuard guard(map);
  guard.Check();             // no structural change yet: fine
  map.InsertOrAssign(1, 11); // overwrite: not structural
  guard.Check();
  EXPECT_DEATH(
      {
        map.InsertOrAssign(2, 20);  // new key: structural
        guard.Check();
      },
      "CHECK failed");
}
#endif  // DSKETCH_DCHECK_IS_ON

TEST(FlatMapProbeTest, GroupProbeMatchesScalarWalk) {
  // Sweep table sizes and load shapes; every lookup through the
  // dispatched probe (AVX2/SSE2/scalar, whatever this build+machine
  // uses) must agree with the scalar reference walk — present and
  // absent keys alike, including after erases reshuffle clusters.
  Rng rng(29);
  for (size_t expected : {size_t{4}, size_t{100}, size_t{5000}}) {
    FlatMap<uint32_t> map(expected);
    std::vector<uint64_t> present;
    for (uint32_t i = 0; i < expected; ++i) {
      uint64_t k = rng.NextU64();
      if (k == FlatMap<uint32_t>::kEmpty) continue;
      map.InsertOrAssign(k, i);
      present.push_back(k);
    }
    // Clustered keys stress the group continuation path (the home-slot
    // shortcut never fires for them past the first).
    for (uint64_t k : ClusteredKeys(8, map.TableSize(), 2, expected)) {
      map.InsertOrAssign(k, 77);
      present.push_back(k);
    }
    for (size_t i = 0; i < present.size(); i += 3) map.Erase(present[i]);

    for (uint64_t k : present) {
      const uint32_t* a = map.Find(k);
      const uint32_t* b = map.FindScalar(k);
      EXPECT_EQ(a, b);
    }
    for (int i = 0; i < 2000; ++i) {
      uint64_t k = rng.NextU64();
      if (k == FlatMap<uint32_t>::kEmpty) continue;
      EXPECT_EQ(map.Find(k), map.FindScalar(k));
    }
  }
}

TEST(FlatMapProbeTest, ProbeIsaNameIsKnown) {
  const char* isa = FlatMapProbeIsa();
  EXPECT_TRUE(std::string(isa) == "avx2" || std::string(isa) == "sse2" ||
              std::string(isa) == "scalar");
}

TEST(FlatMapPositionTest, BackpointersSurviveChurn) {
  // Mirrors SpaceSavingCore's usage: every stored value is also the key
  // of a side table mapping value -> table position, maintained only
  // through InsertOrAssignPosHashed's return and EraseAtPos's on_move
  // hook. After heavy churn every backpointer must still be exact.
  constexpr uint32_t kValues = 300;
  FlatMap<uint32_t> map(kValues);  // pre-sized: no rehash, ever
  std::vector<size_t> pos_of(kValues, FlatMap<uint32_t>::kNpos);
  std::vector<uint64_t> key_of(kValues, 0);
  Rng rng(41);
  for (int step = 0; step < 30000; ++step) {
    uint32_t v = static_cast<uint32_t>(rng.NextU64() % kValues);
    if (pos_of[v] == FlatMap<uint32_t>::kNpos) {
      uint64_t key = rng.NextU64() % 4093;  // collides often
      if (map.FindPosHashed(key, FlatMap<uint32_t>::MixedHash(key)) !=
          FlatMap<uint32_t>::kNpos) {
        continue;  // key already labels another value
      }
      pos_of[v] = map.InsertOrAssignPosHashed(
          key, FlatMap<uint32_t>::MixedHash(key), v);
      key_of[v] = key;
    } else {
      ASSERT_EQ(map.KeyAtPos(pos_of[v]), key_of[v]) << "step " << step;
      map.EraseAtPos(pos_of[v], [&](uint32_t moved, size_t new_pos) {
        pos_of[moved] = new_pos;
      });
      pos_of[v] = FlatMap<uint32_t>::kNpos;
    }
  }
  for (uint32_t v = 0; v < kValues; ++v) {
    if (pos_of[v] == FlatMap<uint32_t>::kNpos) continue;
    ASSERT_EQ(map.KeyAtPos(pos_of[v]), key_of[v]);
    const uint32_t* found = map.Find(key_of[v]);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(*found, v);
  }
}

TEST(FlatMapBatchTest, FindBatchMatchesFindAndRefreshesAfterMutation) {
  FlatMap<uint32_t> map(256);
  Rng rng(53);
  std::vector<uint64_t> keys;
  for (uint32_t i = 0; i < 256; ++i) {
    uint64_t k = rng.NextU64();
    if (k == FlatMap<uint32_t>::kEmpty) continue;
    map.InsertOrAssign(k, i);
    keys.push_back(k);
  }
  keys.push_back(12345);  // absent
  std::vector<const uint32_t*> out(keys.size());

  FlatMap<uint32_t>::BatchGuard guard(map);
  map.FindBatch(keys.data(), keys.size(), out.data());
  guard.Check();  // FindBatch itself is const: results are valid here
  for (size_t j = 0; j < keys.size(); ++j) {
    EXPECT_EQ(out[j], map.Find(keys[j]));
  }

  // The documented hazard: after a structural change the old pointers
  // must be considered dead (generation says so); re-running the batch
  // yields pointers that are again exactly Find's.
  const uint64_t gen_before = map.generation();
  map.Erase(keys[3]);
  map.InsertOrAssign(rng.NextU64() % 1000000 + 1000000, 9);
  EXPECT_NE(map.generation(), gen_before);
  map.FindBatch(keys.data(), keys.size(), out.data());
  for (size_t j = 0; j < keys.size(); ++j) {
    EXPECT_EQ(out[j], map.Find(keys[j]));
  }
  EXPECT_EQ(out[3], nullptr);
}

TEST(FlatMapAllocTest, HeapModeBacksEvenLargeTables) {
  ScopedAllocMode heap(AllocMode::kHeap);
  FlatMap<uint32_t> map(1 << 18);  // 4 MiB table: above any mmap threshold
  EXPECT_FALSE(map.TableBackedByMmap());
  map.InsertOrAssign(42, 7);
  ASSERT_NE(map.Find(42), nullptr);
  EXPECT_EQ(*map.Find(42), 7u);
}

TEST(FlatMapAllocTest, MmapModeBacksLargeTablesWhereSupported) {
  ScopedAllocMode mmapped(AllocMode::kMmap);
  FlatMap<uint32_t> map(1 << 18);
  if (MmapAllocSupported()) {
    EXPECT_TRUE(map.TableBackedByMmap());
  } else {
    EXPECT_FALSE(map.TableBackedByMmap());
  }
  // Behavior is identical either way.
  std::unordered_map<uint64_t, uint32_t> ref;
  Rng rng(61);
  for (uint32_t i = 0; i < 1000; ++i) {
    uint64_t k = rng.NextU64();
    if (k == FlatMap<uint32_t>::kEmpty) continue;
    map.InsertOrAssign(k, i);
    ref[k] = i;
  }
  for (const auto& [key, value] : ref) {
    ASSERT_NE(map.Find(key), nullptr);
    EXPECT_EQ(*map.Find(key), value);
  }
}

TEST(MmapArrayTest, ValueSemanticsAndBackingReport) {
  MmapArray<uint64_t> a;
  EXPECT_TRUE(a.empty());
  a.assign(100, 5);
  ASSERT_EQ(a.size(), 100u);
  for (uint64_t v : a) EXPECT_EQ(v, 5u);

  a.resize(257);  // value-initialized
  ASSERT_EQ(a.size(), 257u);
  for (uint64_t v : a) EXPECT_EQ(v, 0u);
  for (size_t i = 0; i < a.size(); ++i) a[i] = i;

  MmapArray<uint64_t> b = a;  // deep copy
  ASSERT_EQ(b.size(), a.size());
  b[0] = 999;
  EXPECT_EQ(a[0], 0u);

  MmapArray<uint64_t> c = std::move(a);
  ASSERT_EQ(c.size(), 257u);
  EXPECT_EQ(c[256], 256u);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): spec'd empty

  // Small blocks stay on the heap in auto mode; forced mmap blocks
  // report their backing (where the platform has mmap at all).
  ScopedAllocMode mmapped(AllocMode::kMmap);
  MmapArray<uint64_t> big(1 << 20);  // 8 MiB: huge-page candidate
  EXPECT_EQ(big.backed_by_mmap(), MmapAllocSupported());
  big[0] = 1;
  big[(1 << 20) - 1] = 2;
  EXPECT_EQ(big[0] + big[(1 << 20) - 1], 3u);
}

}  // namespace
}  // namespace dsketch
