// Tests for query/: attribute tables, predicates, the exact engine as
// ground truth, and the sketch engine's filtered sums and group-bys —
// the paper's motivating SELECT sum() WHERE ... GROUP BY ... workload.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "core/unbiased_space_saving.h"
#include "query/attribute_table.h"
#include "query/engine.h"
#include "query/exact_aggregator.h"
#include "query/predicate.h"
#include "query/sketch_source.h"
#include "stats/welford.h"
#include "stream/ad_click.h"
#include "util/random.h"

namespace dsketch {
namespace {

AttributeTable SmallTable() {
  AttributeTable table(2);  // dims: {color, size}
  table.AddItem({0, 0});    // item 0: red, small
  table.AddItem({0, 1});    // item 1: red, large
  table.AddItem({1, 0});    // item 2: blue, small
  table.AddItem({1, 1});    // item 3: blue, large
  return table;
}

TEST(AttributeTableTest, StoresTuples) {
  AttributeTable table = SmallTable();
  EXPECT_EQ(table.num_items(), 4u);
  EXPECT_EQ(table.num_dims(), 2u);
  EXPECT_EQ(table.Get(1, 0), 0u);
  EXPECT_EQ(table.Get(1, 1), 1u);
  EXPECT_EQ(table.DimCardinality(0), 2u);
}

TEST(PredicateTest, EmptyMatchesEverything) {
  AttributeTable table = SmallTable();
  Predicate p;
  for (uint64_t i = 0; i < 4; ++i) EXPECT_TRUE(p.Matches(table, i));
}

TEST(PredicateTest, EqAndConjunction) {
  AttributeTable table = SmallTable();
  Predicate red = Predicate().WhereEq(0, 0);
  EXPECT_TRUE(red.Matches(table, 0));
  EXPECT_TRUE(red.Matches(table, 1));
  EXPECT_FALSE(red.Matches(table, 2));

  Predicate red_large = Predicate().WhereEq(0, 0).WhereEq(1, 1);
  EXPECT_FALSE(red_large.Matches(table, 0));
  EXPECT_TRUE(red_large.Matches(table, 1));
}

TEST(PredicateTest, InCondition) {
  AttributeTable table = SmallTable();
  Predicate p = Predicate().WhereIn(0, {0, 1});
  for (uint64_t i = 0; i < 4; ++i) EXPECT_TRUE(p.Matches(table, i));
  Predicate q = Predicate().WhereIn(1, {1});
  EXPECT_FALSE(q.Matches(table, 0));
  EXPECT_TRUE(q.Matches(table, 1));
}

TEST(ExactEngineTest, SumAndGroupBy) {
  AttributeTable table = SmallTable();
  ExactAggregator agg;
  // counts: item0=5, item1=3, item2=2, item3=10
  for (int i = 0; i < 5; ++i) agg.Update(0);
  for (int i = 0; i < 3; ++i) agg.Update(1);
  for (int i = 0; i < 2; ++i) agg.Update(2);
  for (int i = 0; i < 10; ++i) agg.Update(3);

  ExactQueryEngine engine(&agg, &table);
  EXPECT_EQ(engine.Sum(Predicate()), 20);
  EXPECT_EQ(engine.Sum(Predicate().WhereEq(0, 0)), 8);

  auto by_color = engine.GroupBy1(0);
  EXPECT_EQ(by_color[0], 8);
  EXPECT_EQ(by_color[1], 12);

  auto by_both = engine.GroupBy2(0, 1);
  EXPECT_EQ(by_both[PackGroupKey(0, 0)], 5);
  EXPECT_EQ(by_both[PackGroupKey(1, 1)], 10);

  auto filtered = engine.GroupBy1(1, Predicate().WhereEq(0, 1));
  EXPECT_EQ(filtered[0], 2);
  EXPECT_EQ(filtered[1], 10);
}

TEST(SketchEngineTest, MatchesExactWhenSketchIsExact) {
  // Sketch capacity >= distinct items: every estimate is exact, so the
  // approximate engine must coincide with the exact one.
  AttributeTable table = SmallTable();
  ExactAggregator agg;
  UnbiasedSpaceSaving sketch(8, 1);
  Rng rng(180);
  for (int i = 0; i < 1000; ++i) {
    uint64_t item = rng.NextBounded(4);
    agg.Update(item);
    sketch.Update(item);
  }
  ExactQueryEngine exact(&agg, &table);
  SketchQueryEngine approx(&sketch, &table);

  EXPECT_DOUBLE_EQ(approx.Sum(Predicate()).estimate,
                   static_cast<double>(exact.Sum(Predicate())));
  Predicate red = Predicate().WhereEq(0, 0);
  EXPECT_DOUBLE_EQ(approx.Sum(red).estimate,
                   static_cast<double>(exact.Sum(red)));

  auto approx_group = approx.GroupBy1(0);
  auto exact_group = exact.GroupBy1(0);
  for (const auto& [key, truth] : exact_group) {
    EXPECT_DOUBLE_EQ(approx_group[key].estimate,
                     static_cast<double>(truth));
  }
}

TEST(SketchEngineTest, PlainSourceMatchesDirectSketch) {
  // The ingestion interface is a pure indirection: an engine over a
  // PlainSketchSource must agree bit-for-bit with an engine over a
  // directly-fed sketch with the same seed.
  AttributeTable table = SmallTable();
  std::vector<uint64_t> rows;
  Rng rng(183);
  for (int i = 0; i < 2000; ++i) rows.push_back(rng.NextBounded(4));

  UnbiasedSpaceSaving direct(3, 5);
  for (uint64_t item : rows) direct.Update(item);
  PlainSketchSource source(3, 5);
  source.Ingest(rows);

  SketchQueryEngine a(&direct, &table);
  SketchQueryEngine b(&source, &table);
  Predicate red = Predicate().WhereEq(0, 0);
  EXPECT_DOUBLE_EQ(a.Sum(red).estimate, b.Sum(red).estimate);
  EXPECT_DOUBLE_EQ(a.Sum(red).variance, b.Sum(red).variance);
  auto ga = a.GroupBy1(1), gb = b.GroupBy1(1);
  ASSERT_EQ(ga.size(), gb.size());
  for (const auto& [key, est] : ga) {
    EXPECT_DOUBLE_EQ(est.estimate, gb[key].estimate);
  }
}

TEST(SketchEngineTest, ShardedSourceAnswersTheSameQuerySurface) {
  // Rows fan out across 3 shards; the engine queries the merged snapshot.
  // The totals are preserved exactly through shard + merge, so the
  // unfiltered sum and the group-by total are exact.
  AttributeTable table = SmallTable();
  std::vector<uint64_t> rows;
  Rng rng(184);
  for (int i = 0; i < 5000; ++i) rows.push_back(rng.NextBounded(4));

  ShardedSketchOptions opt;
  opt.num_shards = 3;
  opt.shard_capacity = 8;
  opt.seed = 19;
  ShardedSketchSource source(opt, /*merged_capacity=*/8, /*merge_seed=*/7);
  source.Ingest(Span<const uint64_t>(rows.data(), 2500));
  source.Ingest(Span<const uint64_t>(rows.data() + 2500, 2500));

  SketchQueryEngine engine(&source, &table);
  EXPECT_DOUBLE_EQ(engine.Sum(Predicate()).estimate, 5000.0);
  auto groups = engine.GroupBy1(0);
  double total = 0;
  for (const auto& [key, est] : groups) total += est.estimate;
  EXPECT_NEAR(total, 5000.0, 1e-9);

  // With capacity >= distinct items everything is tracked exactly, so
  // filtered sums match the exact aggregation of the same rows.
  ExactAggregator agg;
  for (uint64_t item : rows) agg.Update(item);
  ExactQueryEngine exact(&agg, &table);
  Predicate red = Predicate().WhereEq(0, 0);
  EXPECT_DOUBLE_EQ(engine.Sum(red).estimate,
                   static_cast<double>(exact.Sum(red)));
}

TEST(SketchEngineTest, GroupByPartitionsTotal) {
  AdClickConfig cfg;
  cfg.num_ads = 3000;
  cfg.num_features = 4;
  cfg.feature_cardinality = 10;
  AdClickGenerator gen(cfg, 181);
  auto log = gen.GenerateLog(/*shuffled=*/true, 182);

  UnbiasedSpaceSaving sketch(256, 2);
  for (const AdImpression& row : log) sketch.Update(row.ad_id);

  SketchQueryEngine engine(&sketch, &gen.attributes());
  auto groups = engine.GroupBy1(0);
  double group_total = 0;
  for (const auto& [key, est] : groups) group_total += est.estimate;
  EXPECT_NEAR(group_total, static_cast<double>(gen.total_impressions()),
              1e-6);
}

TEST(SketchEngineTest, FilteredSumsAreUnbiased) {
  AdClickConfig cfg;
  cfg.num_ads = 800;
  cfg.num_features = 3;
  cfg.feature_cardinality = 6;
  cfg.weibull_scale = 20.0;
  AdClickGenerator gen(cfg, 183);

  // Truth for filter feature0 == 2.
  Predicate filter = Predicate().WhereEq(0, 2);
  double truth = 0;
  for (size_t ad = 0; ad < cfg.num_ads; ++ad) {
    if (filter.Matches(gen.attributes(), ad)) {
      truth += static_cast<double>(gen.impressions_per_ad()[ad]);
    }
  }
  ASSERT_GT(truth, 0);

  Welford est;
  for (int t = 0; t < 1500; ++t) {
    auto log = gen.GenerateLog(/*shuffled=*/true, 270000 + t);
    UnbiasedSpaceSaving sketch(64, 280000 + t);
    for (const AdImpression& row : log) sketch.Update(row.ad_id);
    SketchQueryEngine engine(&sketch, &gen.attributes());
    est.Add(engine.Sum(filter).estimate);
  }
  EXPECT_NEAR(est.mean(), truth, 5 * est.stderr_mean());
}

TEST(SketchEngineTest, GroupByVarianceMatchesSubsetFormula) {
  AttributeTable table = SmallTable();
  UnbiasedSpaceSaving sketch(4, 3);
  sketch.core().LoadEntries({{0, 10}, {1, 20}, {2, 30}, {3, 40}});
  SketchQueryEngine engine(&sketch, &table);
  auto groups = engine.GroupBy1(0);
  // Group "red" = items {0,1}: estimate 30, C_S=2, Nmin=10.
  EXPECT_DOUBLE_EQ(groups[0].estimate, 30.0);
  EXPECT_EQ(groups[0].items_in_sample, 2u);
  EXPECT_DOUBLE_EQ(groups[0].variance, 200.0);
}

TEST(SketchEngineTest, SaveAndRestoreEngineState) {
  AttributeTable table = SmallTable();
  std::vector<uint64_t> rows;
  Rng rng(190);
  for (int i = 0; i < 2000; ++i) rows.push_back(rng.NextBounded(4));

  PlainSketchSource source(8, 5);
  source.Ingest(rows);
  SketchQueryEngine engine(&source, &table);
  const std::string state = engine.SaveState();

  // A fresh plain-source engine restores the saved estimates exactly
  // (capacity 8 >= 4 distinct items, so every estimate is exact).
  PlainSketchSource restored_source(8, 9);
  SketchQueryEngine restored(&restored_source, &table);
  ASSERT_TRUE(restored.RestoreState(state));
  Predicate red = Predicate().WhereEq(0, 0);
  EXPECT_DOUBLE_EQ(restored.Sum(Predicate()).estimate,
                   engine.Sum(Predicate()).estimate);
  EXPECT_DOUBLE_EQ(restored.Sum(red).estimate, engine.Sum(red).estimate);
  auto ga = engine.GroupBy1(1), gb = restored.GroupBy1(1);
  ASSERT_EQ(ga.size(), gb.size());
  for (const auto& [key, est] : ga) {
    EXPECT_DOUBLE_EQ(est.estimate, gb[key].estimate);
  }

  // The restored engine keeps ingesting.
  restored_source.Ingest(rows);
  EXPECT_DOUBLE_EQ(restored.Sum(Predicate()).estimate, 4000.0);

  // A sharded-source engine absorbs the same bytes.
  ShardedSketchOptions opts;
  opts.num_shards = 2;
  opts.shard_capacity = 64;
  opts.seed = 11;
  ShardedSketchSource sharded_source(opts, 64, 12);
  SketchQueryEngine sharded_engine(&sharded_source, &table);
  ASSERT_TRUE(sharded_engine.RestoreState(state));
  EXPECT_DOUBLE_EQ(sharded_engine.Sum(Predicate()).estimate,
                   engine.Sum(Predicate()).estimate);

  // Engines over a borrowed const sketch have no source to restore
  // into; malformed bytes are rejected without touching state.
  UnbiasedSpaceSaving direct(8, 1);
  SketchQueryEngine borrowed(&direct, &table);
  EXPECT_FALSE(borrowed.RestoreState(state));
  EXPECT_FALSE(restored.RestoreState("garbage"));
  EXPECT_DOUBLE_EQ(restored.Sum(Predicate()).estimate, 4000.0);
}

}  // namespace
}  // namespace dsketch
