// Tests for util/: random number generation, alias tables, Fenwick trees,
// and the open-addressing flat map.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "util/alias.h"
#include "util/fenwick.h"
#include "util/flat_map.h"
#include "util/random.h"

namespace dsketch {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  uint64_t s1 = 42, s2 = 42;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(SplitMix64Next(s1), SplitMix64Next(s2));
  }
  EXPECT_EQ(s1, s2);
}

TEST(SplitMix64Test, DistinctSeedsDiverge) {
  uint64_t s1 = 1, s2 = 2;
  EXPECT_NE(SplitMix64Next(s1), SplitMix64Next(s2));
}

TEST(Xoshiro256Test, ReproducibleAcrossInstances) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Xoshiro256Test, JumpProducesDisjointStream) {
  Xoshiro256 a(7), b(7);
  b.Jump();
  std::set<uint64_t> first;
  for (int i = 0; i < 1000; ++i) first.insert(a.Next());
  int collisions = 0;
  for (int i = 0; i < 1000; ++i) {
    if (first.count(b.Next())) ++collisions;
  }
  EXPECT_EQ(collisions, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextDoublePositiveNeverZero) {
  Rng rng(10);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(rng.NextDoublePositive(), 0.0);
    EXPECT_LE(rng.NextDoublePositive(), 1.0);
  }
}

TEST(RngTest, NextBoundedRespectsBound) {
  Rng rng(11);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedIsApproximatelyUniform) {
  Rng rng(12);
  const uint64_t kBound = 10;
  const int kDraws = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(kBound)];
  // Chi-square with 9 dof; 99.99% quantile ~ 33.7. Use a loose bound.
  double expected = static_cast<double>(kDraws) / kBound;
  double chi2 = 0;
  for (int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  EXPECT_LT(chi2, 40.0);
}

TEST(RngTest, BernoulliMeanMatches) {
  Rng rng(13);
  const int kDraws = 200000;
  int hits = 0;
  for (int i = 0; i < kDraws; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  double mean = static_cast<double>(hits) / kDraws;
  // 5 sigma of sqrt(0.3*0.7/n) ~ 0.005
  EXPECT_NEAR(mean, 0.3, 0.006);
}

TEST(RngTest, Geometric0MeanMatches) {
  Rng rng(14);
  const double p = 0.2;
  const int kDraws = 200000;
  double sum = 0;
  for (int i = 0; i < kDraws; ++i) sum += static_cast<double>(rng.NextGeometric0(p));
  double mean = sum / kDraws;
  // mean (1-p)/p = 4, sd of estimate ~ sqrt((1-p)/p^2 / n) ~ 0.01
  EXPECT_NEAR(mean, 4.0, 0.08);
}

TEST(RngTest, Geometric0WithPOneIsZero) {
  Rng rng(15);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextGeometric0(1.0), 0u);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(16);
  const int kDraws = 200000;
  double sum = 0;
  for (int i = 0; i < kDraws; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(17);
  const int kDraws = 200000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < kDraws; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sum2 / kDraws, 1.0, 0.03);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(18);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> orig = v;
  rng.Shuffle(v.data(), v.size());
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleIsUniformOnPairs) {
  // For a 2-element vector the swap must happen with probability 1/2.
  Rng rng(19);
  int swapped = 0;
  const int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    std::vector<int> v{0, 1};
    rng.Shuffle(v.data(), v.size());
    if (v[0] == 1) ++swapped;
  }
  EXPECT_NEAR(static_cast<double>(swapped) / kTrials, 0.5, 0.01);
}

TEST(AliasTableTest, ProbabilitiesAreNormalized) {
  AliasTable table({1.0, 2.0, 3.0, 4.0});
  double sum = 0;
  for (size_t i = 0; i < table.size(); ++i) sum += table.Probability(i);
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_NEAR(table.Probability(3), 0.4, 1e-12);
}

TEST(AliasTableTest, SampleFrequenciesMatchWeights) {
  AliasTable table({5.0, 1.0, 3.0, 1.0});
  Rng rng(20);
  const int kDraws = 200000;
  std::vector<int> counts(4, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[table.Sample(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(kDraws), 0.5, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kDraws), 0.1, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kDraws), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(kDraws), 0.1, 0.01);
}

TEST(AliasTableTest, ZeroWeightCategoryNeverDrawn) {
  AliasTable table({1.0, 0.0, 1.0});
  Rng rng(21);
  for (int i = 0; i < 10000; ++i) EXPECT_NE(table.Sample(rng), 1u);
}

TEST(AliasTableTest, SingleCategory) {
  AliasTable table({3.0});
  Rng rng(22);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.Sample(rng), 0u);
}

TEST(FenwickTreeTest, PrefixSumsMatchBruteForce) {
  std::vector<int64_t> w{3, 0, 5, 1, 2, 0, 7};
  FenwickTree tree(w);
  int64_t acc = 0;
  for (size_t i = 0; i <= w.size(); ++i) {
    EXPECT_EQ(tree.PrefixSum(i), acc);
    if (i < w.size()) acc += w[i];
  }
  EXPECT_EQ(tree.Total(), acc);
}

TEST(FenwickTreeTest, AddUpdatesSums) {
  FenwickTree tree(5);
  tree.Add(0, 2);
  tree.Add(3, 4);
  tree.Add(3, -1);
  EXPECT_EQ(tree.Get(0), 2);
  EXPECT_EQ(tree.Get(3), 3);
  EXPECT_EQ(tree.Total(), 5);
  EXPECT_EQ(tree.PrefixSum(4), 5);
}

TEST(FenwickTreeTest, FindByPrefixInvertsPrefixSum) {
  std::vector<int64_t> w{2, 0, 3, 1};
  FenwickTree tree(w);
  // Targets 0,1 -> item 0; 2,3,4 -> item 2; 5 -> item 3.
  EXPECT_EQ(tree.FindByPrefix(0), 0u);
  EXPECT_EQ(tree.FindByPrefix(1), 0u);
  EXPECT_EQ(tree.FindByPrefix(2), 2u);
  EXPECT_EQ(tree.FindByPrefix(4), 2u);
  EXPECT_EQ(tree.FindByPrefix(5), 3u);
}

TEST(WeightedUrnTest, DrawsExactMultiset) {
  std::vector<int64_t> counts{3, 1, 0, 2};
  WeightedUrn urn(counts);
  Rng rng(23);
  std::vector<int64_t> drawn(4, 0);
  while (!urn.Empty()) ++drawn[urn.Draw(rng)];
  EXPECT_EQ(drawn[0], 3);
  EXPECT_EQ(drawn[1], 1);
  EXPECT_EQ(drawn[2], 0);
  EXPECT_EQ(drawn[3], 2);
}

TEST(WeightedUrnTest, FirstDrawProportionalToWeight) {
  const int kTrials = 50000;
  int first_is_zero = 0;
  for (int t = 0; t < kTrials; ++t) {
    WeightedUrn urn({8, 2});
    Rng rng(1000 + t);
    if (urn.Draw(rng) == 0) ++first_is_zero;
  }
  EXPECT_NEAR(first_is_zero / static_cast<double>(kTrials), 0.8, 0.01);
}

TEST(FlatMapTest, InsertFindErase) {
  FlatMap<uint32_t> map;
  EXPECT_TRUE(map.empty());
  map.InsertOrAssign(5, 50);
  map.InsertOrAssign(6, 60);
  ASSERT_NE(map.Find(5), nullptr);
  EXPECT_EQ(*map.Find(5), 50u);
  EXPECT_EQ(map.Find(7), nullptr);
  EXPECT_TRUE(map.Erase(5));
  EXPECT_FALSE(map.Erase(5));
  EXPECT_EQ(map.Find(5), nullptr);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMapTest, OverwriteKeepsSingleEntry) {
  FlatMap<uint32_t> map;
  map.InsertOrAssign(9, 1);
  map.InsertOrAssign(9, 2);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(*map.Find(9), 2u);
}

TEST(FlatMapTest, GrowsBeyondInitialCapacity) {
  FlatMap<uint64_t> map(4);
  for (uint64_t k = 0; k < 1000; ++k) map.InsertOrAssign(k * 7 + 1, k);
  EXPECT_EQ(map.size(), 1000u);
  for (uint64_t k = 0; k < 1000; ++k) {
    ASSERT_NE(map.Find(k * 7 + 1), nullptr);
    EXPECT_EQ(*map.Find(k * 7 + 1), k);
  }
}

TEST(FlatMapTest, MatchesUnorderedMapUnderChurn) {
  FlatMap<uint64_t> map;
  std::unordered_map<uint64_t, uint64_t> ref;
  Rng rng(24);
  for (int op = 0; op < 200000; ++op) {
    uint64_t key = rng.NextBounded(500) + 1;
    switch (rng.NextBounded(3)) {
      case 0: {
        uint64_t v = rng.NextU64();
        map.InsertOrAssign(key, v);
        ref[key] = v;
        break;
      }
      case 1: {
        bool erased = map.Erase(key);
        EXPECT_EQ(erased, ref.erase(key) > 0);
        break;
      }
      default: {
        const uint64_t* found = map.Find(key);
        auto it = ref.find(key);
        if (it == ref.end()) {
          EXPECT_EQ(found, nullptr);
        } else {
          ASSERT_NE(found, nullptr);
          EXPECT_EQ(*found, it->second);
        }
      }
    }
    EXPECT_EQ(map.size(), ref.size());
  }
}

TEST(FlatMapTest, ClearRemovesEverything) {
  FlatMap<uint32_t> map;
  for (uint64_t k = 1; k <= 50; ++k) map.InsertOrAssign(k, 1);
  map.Clear();
  EXPECT_TRUE(map.empty());
  for (uint64_t k = 1; k <= 50; ++k) EXPECT_EQ(map.Find(k), nullptr);
}

TEST(FlatMapTest, HashedOverloadsMatchPlainOnes) {
  // The batched ingestion path pre-mixes keys once and reuses the hash
  // across Find/Insert/Erase; the *Hashed overloads must behave exactly
  // like the plain calls (the hash survives rehashes by construction).
  FlatMap<uint32_t> map(4);  // small: forces growth + rehash
  for (uint64_t k = 1; k <= 200; ++k) {
    map.InsertOrAssignHashed(k, FlatMap<uint32_t>::MixedHash(k),
                             static_cast<uint32_t>(k * 3));
  }
  for (uint64_t k = 1; k <= 200; ++k) {
    const uint64_t h = FlatMap<uint32_t>::MixedHash(k);
    map.Prefetch(h);  // advisory only; must be safe anywhere
    uint32_t* v = map.FindHashed(k, h);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, k * 3);
    EXPECT_EQ(map.Find(k), v);
  }
  for (uint64_t k = 1; k <= 200; k += 2) {
    EXPECT_TRUE(map.EraseHashed(k, FlatMap<uint32_t>::MixedHash(k)));
  }
  EXPECT_EQ(map.size(), 100u);
  for (uint64_t k = 1; k <= 200; ++k) {
    EXPECT_EQ(map.Find(k) != nullptr, k % 2 == 0) << k;
  }
}

TEST(FlatMapTest, FindBatchMatchesScalarFind) {
  FlatMap<uint32_t> map(64);
  for (uint64_t k = 0; k < 300; k += 3) {
    map.InsertOrAssign(k + 1, static_cast<uint32_t>(k));
  }
  std::vector<uint64_t> keys;
  for (uint64_t k = 1; k <= 300; ++k) keys.push_back(k);
  std::vector<const uint32_t*> got(keys.size());
  map.FindBatch(keys.data(), keys.size(), got.data());
  for (size_t i = 0; i < keys.size(); ++i) {
    const uint32_t* want = map.Find(keys[i]);
    EXPECT_EQ(got[i], want) << "key " << keys[i];
    if (want != nullptr) {
      EXPECT_EQ(*got[i], *want);
    }
  }
}

}  // namespace
}  // namespace dsketch
