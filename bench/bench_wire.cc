// Wire-format benchmark: encode/decode throughput and bytes-per-entry
// for wire v1 (fixed 16 B/entry) vs v2 (varint/delta) across sketch
// capacities, on the Zipf(1.1) workload the v2 layout targets (small
// item ids, long near-minimum count tail), plus the frozen image (kind
// 8): its size premium over v2, freeze throughput, and the
// restore-to-first-answer latency cliff — v2 must decode O(n) entries
// before the first query, the frozen image answers after an O(1) vet.
// Records machine-readable baselines with --json=PATH (see
// bench/record_baselines.sh).
//
// Flags: --zipf_s=1.1 --max_cap=65536 --reps=0 (0 = auto-scale so each
// timed loop processes a few million entries); --smoke runs the frozen
// bit-identity assertions instead (CI gate: frozen SUM / TOPK / GROUPBY
// answers must equal the thawed sketch's, bit for bit).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "bench_util.h"
#include "core/frequent_items.h"
#include "core/serialization.h"
#include "core/subset_sum.h"
#include "core/unbiased_space_saving.h"
#include "query/attribute_table.h"
#include "query/engine.h"
#include "query/frozen_source.h"
#include "query/predicate.h"
#include "stream/distributions.h"
#include "stream/generators.h"
#include "util/span.h"
#include "wire/frozen.h"

namespace dsketch {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Builds a full sketch over a Zipf(s) stream with ~2x capacity distinct
// items, so every bin is labeled (the worst case for v2's delta tail).
UnbiasedSpaceSaving BuildSketch(size_t capacity, double s) {
  std::vector<int64_t> counts =
      ZipfCounts(2 * capacity, s, static_cast<int64_t>(8 * capacity));
  std::vector<uint64_t> stream = SortedStream(counts, /*ascending=*/false);
  UnbiasedSpaceSaving sketch(capacity, 7);
  sketch.UpdateBatch(Span<const uint64_t>(stream.data(), stream.size()));
  return sketch;
}

struct OpStats {
  double mb_per_s = 0.0;
  double entries_per_s = 0.0;
};

template <typename Fn>
OpStats Time(int64_t reps, size_t bytes, size_t entries, Fn&& fn) {
  auto start = std::chrono::steady_clock::now();
  for (int64_t r = 0; r < reps; ++r) fn();
  const double secs = SecondsSince(start);
  OpStats out;
  if (secs > 0.0) {
    out.mb_per_s = static_cast<double>(bytes) * static_cast<double>(reps) /
                   secs / 1e6;
    out.entries_per_s = static_cast<double>(entries) *
                        static_cast<double>(reps) / secs;
  }
  return out;
}

// CI gate (--smoke): frozen answers must be bit-identical to the thawed
// sketch's across the whole query surface. The reference is the THAWED
// image (freeze -> thaw round trip), which is also what a replica's
// peers compute — the canonical entry order makes the two paths traverse
// identical sequences. Exits non-zero on the first mismatch.
int RunSmoke(double s) {
  const size_t capacity = 4096;
  UnbiasedSpaceSaving sketch = BuildSketch(capacity, s);
  const std::string image = SerializeFrozen(sketch);

  std::optional<UnbiasedSpaceSaving> thawed = ThawFrozen(image, 3);
  if (!thawed.has_value()) {
    std::fprintf(stderr, "smoke: FAILED — freeze -> thaw round trip\n");
    return 1;
  }
  std::optional<FrozenSketchSource> source =
      FrozenSketchSource::FromBlob(image, 3);
  if (!source.has_value() || !source->Validate()) {
    std::fprintf(stderr, "smoke: FAILED — frozen image vet/validate\n");
    return 1;
  }

  // Attribute table covering every tracked item: dim0 = item % 7,
  // dim1 = item % 3 — enough structure for selective predicates and
  // multi-group group-bys.
  uint64_t max_item = 0;
  for (const SketchEntry& e : thawed->Entries()) {
    max_item = std::max(max_item, e.item);
  }
  AttributeTable attrs(2);
  for (uint64_t i = 0; i <= max_item; ++i) {
    attrs.AddItem({static_cast<uint32_t>(i % 7),
                   static_cast<uint32_t>(i % 3)});
  }
  SketchQueryEngine frozen_engine(&*source, &attrs);
  SketchQueryEngine thawed_engine(&*thawed, &attrs);

  auto fail = [](const char* what) {
    std::fprintf(stderr, "smoke: FAILED — frozen %s != thawed %s\n", what,
                 what);
    return 1;
  };
  auto same = [](const SubsetSumEstimate& a, const SubsetSumEstimate& b) {
    return a.estimate == b.estimate && a.variance == b.variance &&
           a.items_in_sample == b.items_in_sample;
  };

  // SUM: unfiltered plus every dim0 selectivity.
  if (!same(frozen_engine.Sum(Predicate()), thawed_engine.Sum(Predicate()))) {
    return fail("SUM (match-all)");
  }
  for (uint32_t v = 0; v < 7; ++v) {
    Predicate where;
    where.WhereEq(0, v);
    if (!same(frozen_engine.Sum(where), thawed_engine.Sum(where))) {
      return fail("SUM (filtered)");
    }
  }

  // TOPK at several k, off the image's native order.
  for (size_t k : {size_t{1}, size_t{10}, size_t{257}, sketch.size()}) {
    std::vector<SketchEntry> frozen_top = FrozenTopK(source->frozen(), k);
    std::vector<SketchEntry> thawed_top = TopK(*thawed, k);
    if (frozen_top.size() != thawed_top.size()) return fail("TOPK size");
    for (size_t i = 0; i < frozen_top.size(); ++i) {
      if (frozen_top[i].item != thawed_top[i].item ||
          frozen_top[i].count != thawed_top[i].count) {
        return fail("TOPK entries");
      }
    }
  }

  // GROUPBY: 1-way on each dim and the 2-way cross, filtered and not.
  Predicate filter;
  filter.WhereIn(1, {0, 2});
  for (const Predicate* where : {&filter, static_cast<Predicate*>(nullptr)}) {
    const Predicate& pred = where != nullptr ? *where : Predicate();
    for (size_t dim = 0; dim < 2; ++dim) {
      auto frozen_groups = frozen_engine.GroupBy1(dim, pred);
      auto thawed_groups = thawed_engine.GroupBy1(dim, pred);
      if (frozen_groups.size() != thawed_groups.size()) {
        return fail("GROUPBY group count");
      }
      for (const auto& [key, est] : frozen_groups) {
        auto it = thawed_groups.find(key);
        if (it == thawed_groups.end() || !same(est, it->second)) {
          return fail("GROUPBY estimates");
        }
      }
    }
    auto frozen2 = frozen_engine.GroupBy2(0, 1, pred);
    auto thawed2 = thawed_engine.GroupBy2(0, 1, pred);
    if (frozen2.size() != thawed2.size()) return fail("GROUPBY2 group count");
    for (const auto& [key, est] : frozen2) {
      auto it = thawed2.find(key);
      if (it == thawed2.end() || !same(est, it->second)) {
        return fail("GROUPBY2 estimates");
      }
    }
  }

  // Point estimates through the hash index, including untracked items.
  for (const SketchEntry& e : thawed->Entries()) {
    if (source->frozen().EstimateCount(e.item) !=
        thawed->EstimateCount(e.item)) {
      return fail("EstimateCount (tracked)");
    }
  }
  for (uint64_t probe = max_item + 1; probe < max_item + 100; ++probe) {
    if (source->frozen().EstimateCount(probe) != 0) {
      return fail("EstimateCount (untracked)");
    }
  }

  std::printf(
      "smoke: OK — frozen SUM/TOPK/GROUPBY bit-identical to thawed over "
      "%zu entries (%zu image bytes)\n",
      sketch.size(), image.size());
  return 0;
}

void Run(int argc, char** argv) {
  const double s = bench::FlagDouble(argc, argv, "zipf_s", 1.1);
  const int64_t max_cap = bench::FlagInt(argc, argv, "max_cap", 65536);
  const int64_t reps_flag = bench::FlagInt(argc, argv, "reps", 0);
  bench::JsonSink json(argc, argv, "wire");

  bench::Banner("Wire format: v1 (fixed-width) vs v2 (varint/delta)",
                "paper §5.5 (sketches shipped over the network)");
  std::printf("\n%-9s %9s %9s %7s | %-9s %11s %11s\n", "capacity",
              "v1_B/ent", "v2_B/ent", "v2/v1", "op", "v1_MB/s", "v2_MB/s");

  for (size_t capacity = 1024; capacity <= static_cast<size_t>(max_cap);
       capacity *= 4) {
    UnbiasedSpaceSaving sketch = BuildSketch(capacity, s);
    const size_t entries = sketch.size();
    const std::string v1 = SerializeV1(sketch);
    const std::string v2 = Serialize(sketch);
    const double v1_per_entry =
        static_cast<double>(v1.size()) / static_cast<double>(entries);
    const double v2_per_entry =
        static_cast<double>(v2.size()) / static_cast<double>(entries);
    const double ratio =
        static_cast<double>(v2.size()) / static_cast<double>(v1.size());

    const int64_t reps =
        reps_flag > 0 ? reps_flag
                      : std::max<int64_t>(3, 2000000 / static_cast<int64_t>(
                                                           capacity));
    size_t sink = 0;  // keeps the timed loops observable
    OpStats enc_v1 = Time(reps, v1.size(), entries,
                          [&] { sink += SerializeV1(sketch).size(); });
    OpStats enc_v2 = Time(reps, v2.size(), entries,
                          [&] { sink += Serialize(sketch).size(); });
    OpStats dec_v1 = Time(reps, v1.size(), entries, [&] {
      sink += DeserializeUnbiased(v1, 3).has_value() ? 1 : 0;
    });
    OpStats dec_v2 = Time(reps, v2.size(), entries, [&] {
      sink += DeserializeUnbiased(v2, 3).has_value() ? 1 : 0;
    });

    std::printf("%-9zu %9.2f %9.2f %6.0f%% | %-9s %11.1f %11.1f\n", capacity,
                v1_per_entry, v2_per_entry, 100.0 * ratio, "encode",
                enc_v1.mb_per_s, enc_v2.mb_per_s);
    std::printf("%-9s %9s %9s %7s | %-9s %11.1f %11.1f\n", "", "", "", "",
                "decode", dec_v1.mb_per_s, dec_v2.mb_per_s);
    if (sink == 0) std::printf("(unreachable)\n");

    // Frozen image: size premium over v2, freeze throughput, and the
    // restore-to-first-answer cliff. "Restore" for v2 is the full O(n)
    // decode; for the frozen image it is the O(1) vet — both are then
    // charged one point query so each path ends at the same first
    // answer.
    const std::string frozen = SerializeFrozen(sketch);
    const double frozen_per_entry =
        static_cast<double>(frozen.size()) / static_cast<double>(entries);
    const double frozen_over_v2 =
        static_cast<double>(frozen.size()) / static_cast<double>(v2.size());
    OpStats freeze = Time(reps, frozen.size(), entries,
                          [&] { sink += SerializeFrozen(sketch).size(); });

    const uint64_t probe = sketch.Entries().front().item;
    auto start = std::chrono::steady_clock::now();
    for (int64_t r = 0; r < reps; ++r) {
      std::optional<UnbiasedSpaceSaving> restored = DeserializeUnbiased(v2, 3);
      sink += static_cast<size_t>(restored->EstimateCount(probe));
    }
    const double v2_restore_us = SecondsSince(start) / reps * 1e6;

    // The frozen path is ns-scale: run many more reps to get a stable
    // per-op figure.
    const int64_t frozen_reps = std::max<int64_t>(reps * 64, 100000);
    start = std::chrono::steady_clock::now();
    for (int64_t r = 0; r < frozen_reps; ++r) {
      std::optional<wire::FrozenView> view = wire::FrozenView::Vet(frozen);
      sink += static_cast<size_t>(view->EstimateCount(probe));
    }
    const double frozen_restore_us = SecondsSince(start) / frozen_reps * 1e6;
    const double restore_speedup =
        frozen_restore_us > 0.0 ? v2_restore_us / frozen_restore_us : 0.0;

    std::printf(
        "%-9s frozen: %5.1f B/ent (%3.0f%% of v2) | freeze %7.1f MB/s | "
        "restore-to-first-answer %9.1f us (v2) vs %6.2f us (frozen) = "
        "%.0fx\n",
        "", frozen_per_entry, 100.0 * frozen_over_v2, freeze.mb_per_s,
        v2_restore_us, frozen_restore_us, restore_speedup);

    if (json.enabled()) {
      json.BeginRecord("frozen");
      json.Add("capacity", static_cast<int64_t>(capacity));
      json.Add("entries", static_cast<int64_t>(entries));
      json.Add("frozen_bytes", static_cast<int64_t>(frozen.size()));
      json.Add("frozen_bytes_per_entry", frozen_per_entry);
      json.Add("frozen_over_v2", frozen_over_v2);
      json.Add("freeze_mb_per_s", freeze.mb_per_s);
      json.Add("v2_restore_us", v2_restore_us);
      json.Add("frozen_restore_us", frozen_restore_us);
      json.Add("restore_speedup", restore_speedup);
    }

    if (json.enabled()) {
      json.BeginRecord("size");
      json.Add("capacity", static_cast<int64_t>(capacity));
      json.Add("entries", static_cast<int64_t>(entries));
      json.Add("zipf_s", s);
      json.Add("v1_bytes", static_cast<int64_t>(v1.size()));
      json.Add("v2_bytes", static_cast<int64_t>(v2.size()));
      json.Add("v1_bytes_per_entry", v1_per_entry);
      json.Add("v2_bytes_per_entry", v2_per_entry);
      json.Add("v2_over_v1", ratio);
      for (const auto& [op, st_v1, st_v2] :
           {std::tuple<const char*, OpStats, OpStats>{"encode", enc_v1,
                                                      enc_v2},
            std::tuple<const char*, OpStats, OpStats>{"decode", dec_v1,
                                                      dec_v2}}) {
        json.BeginRecord("throughput");
        json.Add("capacity", static_cast<int64_t>(capacity));
        json.Add("op", std::string(op));
        json.Add("reps", reps);
        json.Add("v1_mb_per_s", st_v1.mb_per_s);
        json.Add("v1_entries_per_s", st_v1.entries_per_s);
        json.Add("v2_mb_per_s", st_v2.mb_per_s);
        json.Add("v2_entries_per_s", st_v2.entries_per_s);
      }
    }
  }

  std::printf(
      "\n(v2 targets the entry lists the distributed merge ships: varint\n"
      " items + delta-encoded descending counts; weights stay fixed64)\n");
}

}  // namespace
}  // namespace dsketch

int main(int argc, char** argv) {
  if (dsketch::bench::FlagSet(argc, argv, "smoke")) {
    const double s = dsketch::bench::FlagDouble(argc, argv, "zipf_s", 1.1);
    return dsketch::RunSmoke(s);
  }
  dsketch::Run(argc, argv);
  return 0;
}
