// Wire-format benchmark: encode/decode throughput and bytes-per-entry
// for wire v1 (fixed 16 B/entry) vs v2 (varint/delta) across sketch
// capacities, on the Zipf(1.1) workload the v2 layout targets (small
// item ids, long near-minimum count tail). Records machine-readable
// baselines with --json=PATH (see bench/record_baselines.sh).
//
// Flags: --zipf_s=1.1 --max_cap=65536 --reps=0 (0 = auto-scale so each
// timed loop processes a few million entries).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <tuple>
#include <vector>

#include "bench_util.h"
#include "core/serialization.h"
#include "core/unbiased_space_saving.h"
#include "stream/distributions.h"
#include "stream/generators.h"
#include "util/span.h"

namespace dsketch {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Builds a full sketch over a Zipf(s) stream with ~2x capacity distinct
// items, so every bin is labeled (the worst case for v2's delta tail).
UnbiasedSpaceSaving BuildSketch(size_t capacity, double s) {
  std::vector<int64_t> counts =
      ZipfCounts(2 * capacity, s, static_cast<int64_t>(8 * capacity));
  std::vector<uint64_t> stream = SortedStream(counts, /*ascending=*/false);
  UnbiasedSpaceSaving sketch(capacity, 7);
  sketch.UpdateBatch(Span<const uint64_t>(stream.data(), stream.size()));
  return sketch;
}

struct OpStats {
  double mb_per_s = 0.0;
  double entries_per_s = 0.0;
};

template <typename Fn>
OpStats Time(int64_t reps, size_t bytes, size_t entries, Fn&& fn) {
  auto start = std::chrono::steady_clock::now();
  for (int64_t r = 0; r < reps; ++r) fn();
  const double secs = SecondsSince(start);
  OpStats out;
  if (secs > 0.0) {
    out.mb_per_s = static_cast<double>(bytes) * static_cast<double>(reps) /
                   secs / 1e6;
    out.entries_per_s = static_cast<double>(entries) *
                        static_cast<double>(reps) / secs;
  }
  return out;
}

void Run(int argc, char** argv) {
  const double s = bench::FlagDouble(argc, argv, "zipf_s", 1.1);
  const int64_t max_cap = bench::FlagInt(argc, argv, "max_cap", 65536);
  const int64_t reps_flag = bench::FlagInt(argc, argv, "reps", 0);
  bench::JsonSink json(argc, argv, "wire");

  bench::Banner("Wire format: v1 (fixed-width) vs v2 (varint/delta)",
                "paper §5.5 (sketches shipped over the network)");
  std::printf("\n%-9s %9s %9s %7s | %-9s %11s %11s\n", "capacity",
              "v1_B/ent", "v2_B/ent", "v2/v1", "op", "v1_MB/s", "v2_MB/s");

  for (size_t capacity = 1024; capacity <= static_cast<size_t>(max_cap);
       capacity *= 4) {
    UnbiasedSpaceSaving sketch = BuildSketch(capacity, s);
    const size_t entries = sketch.size();
    const std::string v1 = SerializeV1(sketch);
    const std::string v2 = Serialize(sketch);
    const double v1_per_entry =
        static_cast<double>(v1.size()) / static_cast<double>(entries);
    const double v2_per_entry =
        static_cast<double>(v2.size()) / static_cast<double>(entries);
    const double ratio =
        static_cast<double>(v2.size()) / static_cast<double>(v1.size());

    const int64_t reps =
        reps_flag > 0 ? reps_flag
                      : std::max<int64_t>(3, 2000000 / static_cast<int64_t>(
                                                           capacity));
    size_t sink = 0;  // keeps the timed loops observable
    OpStats enc_v1 = Time(reps, v1.size(), entries,
                          [&] { sink += SerializeV1(sketch).size(); });
    OpStats enc_v2 = Time(reps, v2.size(), entries,
                          [&] { sink += Serialize(sketch).size(); });
    OpStats dec_v1 = Time(reps, v1.size(), entries, [&] {
      sink += DeserializeUnbiased(v1, 3).has_value() ? 1 : 0;
    });
    OpStats dec_v2 = Time(reps, v2.size(), entries, [&] {
      sink += DeserializeUnbiased(v2, 3).has_value() ? 1 : 0;
    });

    std::printf("%-9zu %9.2f %9.2f %6.0f%% | %-9s %11.1f %11.1f\n", capacity,
                v1_per_entry, v2_per_entry, 100.0 * ratio, "encode",
                enc_v1.mb_per_s, enc_v2.mb_per_s);
    std::printf("%-9s %9s %9s %7s | %-9s %11.1f %11.1f\n", "", "", "", "",
                "decode", dec_v1.mb_per_s, dec_v2.mb_per_s);
    if (sink == 0) std::printf("(unreachable)\n");

    if (json.enabled()) {
      json.BeginRecord("size");
      json.Add("capacity", static_cast<int64_t>(capacity));
      json.Add("entries", static_cast<int64_t>(entries));
      json.Add("zipf_s", s);
      json.Add("v1_bytes", static_cast<int64_t>(v1.size()));
      json.Add("v2_bytes", static_cast<int64_t>(v2.size()));
      json.Add("v1_bytes_per_entry", v1_per_entry);
      json.Add("v2_bytes_per_entry", v2_per_entry);
      json.Add("v2_over_v1", ratio);
      for (const auto& [op, st_v1, st_v2] :
           {std::tuple<const char*, OpStats, OpStats>{"encode", enc_v1,
                                                      enc_v2},
            std::tuple<const char*, OpStats, OpStats>{"decode", dec_v1,
                                                      dec_v2}}) {
        json.BeginRecord("throughput");
        json.Add("capacity", static_cast<int64_t>(capacity));
        json.Add("op", std::string(op));
        json.Add("reps", reps);
        json.Add("v1_mb_per_s", st_v1.mb_per_s);
        json.Add("v1_entries_per_s", st_v1.entries_per_s);
        json.Add("v2_mb_per_s", st_v2.mb_per_s);
        json.Add("v2_entries_per_s", st_v2.entries_per_s);
      }
    }
  }

  std::printf(
      "\n(v2 targets the entry lists the distributed merge ships: varint\n"
      " items + delta-encoded descending counts; weights stay fixed64)\n");
}

}  // namespace
}  // namespace dsketch

int main(int argc, char** argv) {
  dsketch::Run(argc, argv);
  return 0;
}
