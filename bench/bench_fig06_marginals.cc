// Figure 6: 1-way and 2-way marginal counts on the (synthetic) ad click
// log — the Criteo substitution described in DESIGN.md §3. The log
// arrives in its natural blocked (non-exchangeable) order; the sketch
// ingests raw impressions while priority sampling gets the pre-aggregated
// per-ad counts. Reported: mean relative MSE of marginal estimates
// bucketed by the true marginal size, for both methods.

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "core/unbiased_space_saving.h"
#include "query/engine.h"
#include "sampling/priority_sampling.h"
#include "stats/summary.h"
#include "stream/ad_click.h"
#include "util/random.h"

namespace dsketch {
namespace {

struct MarginalKey {
  uint64_t key;
  double truth;
};

void Run(int argc, char** argv) {
  const int64_t ads = bench::FlagInt(argc, argv, "ads", 20000);
  const int64_t m = bench::FlagInt(argc, argv, "bins", 2000);
  const int64_t trials = bench::FlagInt(argc, argv, "trials", 15);

  bench::Banner(
      "Figure 6: 1-way and 2-way marginals on the ad click log",
      "paper Fig. 6 (Criteo substitution, USS vs priority sampling)");

  AdClickConfig cfg;
  cfg.num_ads = static_cast<size_t>(ads);
  AdClickGenerator gen(cfg, 1);
  std::printf("ads=%lld impressions=%lld features=%zu\n",
              static_cast<long long>(ads),
              static_cast<long long>(gen.total_impressions()),
              cfg.num_features);

  const AttributeTable& attrs = gen.attributes();

  // Ground-truth marginals over all features (1-way) and feature pairs
  // (2-way, a subset of pairs to bound runtime).
  std::unordered_map<uint64_t, double> truth1, truth2;
  for (size_t ad = 0; ad < cfg.num_ads; ++ad) {
    double w = static_cast<double>(gen.impressions_per_ad()[ad]);
    for (size_t f = 0; f < cfg.num_features; ++f) {
      truth1[PackGroupKey(static_cast<uint32_t>(f), attrs.Get(ad, f))] += w;
    }
    for (size_t f = 0; f + 1 < cfg.num_features; f += 2) {
      uint64_t key = (static_cast<uint64_t>(f) << 48) |
                     (static_cast<uint64_t>(attrs.Get(ad, f)) << 24) |
                     attrs.Get(ad, f + 1);
      truth2[key] += w;
    }
  }

  std::unordered_map<uint64_t, ErrorAccumulator> err1_uss, err1_pri;
  std::unordered_map<uint64_t, ErrorAccumulator> err2_uss, err2_pri;

  for (int64_t t = 0; t < trials; ++t) {
    auto log = gen.GenerateLog(/*shuffled=*/false,
                               static_cast<uint64_t>(100 + t));
    UnbiasedSpaceSaving uss(static_cast<size_t>(m),
                            static_cast<uint64_t>(200 + t));
    for (const AdImpression& row : log) uss.Update(row.ad_id);

    PrioritySampler pri(static_cast<size_t>(m),
                        static_cast<uint64_t>(300 + t));
    for (size_t ad = 0; ad < cfg.num_ads; ++ad) {
      if (gen.impressions_per_ad()[ad] > 0) {
        pri.Add(ad, static_cast<double>(gen.impressions_per_ad()[ad]));
      }
    }

    // One pass per estimator accumulating every marginal.
    std::unordered_map<uint64_t, double> est1_uss, est2_uss, est1_pri,
        est2_pri;
    for (const SketchEntry& e : uss.Entries()) {
      double w = static_cast<double>(e.count);
      for (size_t f = 0; f < cfg.num_features; ++f) {
        est1_uss[PackGroupKey(static_cast<uint32_t>(f),
                              attrs.Get(e.item, f))] += w;
      }
      for (size_t f = 0; f + 1 < cfg.num_features; f += 2) {
        uint64_t key = (static_cast<uint64_t>(f) << 48) |
                       (static_cast<uint64_t>(attrs.Get(e.item, f)) << 24) |
                       attrs.Get(e.item, f + 1);
        est2_uss[key] += w;
      }
    }
    for (const WeightedEntry& e : pri.Sample()) {
      for (size_t f = 0; f < cfg.num_features; ++f) {
        est1_pri[PackGroupKey(static_cast<uint32_t>(f),
                              attrs.Get(e.item, f))] += e.weight;
      }
      for (size_t f = 0; f + 1 < cfg.num_features; f += 2) {
        uint64_t key = (static_cast<uint64_t>(f) << 48) |
                       (static_cast<uint64_t>(attrs.Get(e.item, f)) << 24) |
                       attrs.Get(e.item, f + 1);
        est2_pri[key] += e.weight;
      }
    }

    for (const auto& [key, tr] : truth1) {
      err1_uss[key].Add(est1_uss.count(key) ? est1_uss[key] : 0.0, tr);
      err1_pri[key].Add(est1_pri.count(key) ? est1_pri[key] : 0.0, tr);
    }
    for (const auto& [key, tr] : truth2) {
      err2_uss[key].Add(est2_uss.count(key) ? est2_uss[key] : 0.0, tr);
      err2_pri[key].Add(est2_pri.count(key) ? est2_pri[key] : 0.0, tr);
    }
  }

  auto report = [](const char* label,
                   const std::unordered_map<uint64_t, double>& truth,
                   std::unordered_map<uint64_t, ErrorAccumulator>& uss,
                   std::unordered_map<uint64_t, ErrorAccumulator>& pri) {
    double min_t = 1e300, max_t = 0;
    for (const auto& [k, tr] : truth) {
      if (tr > 0) {
        min_t = std::min(min_t, tr);
        max_t = std::max(max_t, tr);
      }
    }
    LogBucketCurve uss_curve(min_t, max_t + 1, 6), pri_curve(min_t, max_t + 1, 6);
    for (const auto& [k, tr] : truth) {
      if (tr <= 0) continue;
      uss_curve.Add(tr, uss[k].mse() / (tr * tr));
      pri_curve.Add(tr, pri[k].mse() / (tr * tr));
    }
    std::printf("\n%s marginals (%zu of them)\n", label, truth.size());
    std::printf("%-18s %14s %18s %10s\n", "marginal_size", "uss_rel_mse",
                "priority_rel_mse", "marginals");
    auto up = uss_curve.Points();
    auto pp = pri_curve.Points();
    for (size_t b = 0; b < up.size() && b < pp.size(); ++b) {
      std::printf("%-18.0f %14.5f %18.5f %10llu\n", up[b].x_center,
                  up[b].mean_y, pp[b].mean_y,
                  static_cast<unsigned long long>(up[b].count));
    }
  };

  report("1-way", truth1, err1_uss, err1_pri);
  report("2-way", truth2, err2_uss, err2_pri);
  std::printf(
      "\n(paper: rel. MSE < 5%% for marginals of 100k-200k, < 0.5%% for\n"
      " marginals above half the data; USS ~ priority sampling)\n");
}

}  // namespace
}  // namespace dsketch

int main(int argc, char** argv) {
  dsketch::Run(argc, argv);
  return 0;
}
