// Figure 9: quality of the eq. 5 variance estimator on the pathological
// sorted stream. Left panel data: mean estimated sd over the realized sd
// (sigma_hat / sigma — upward biased, accurate for mid-size counts).
// Right panel data: realized sd over the sd of a true fixed-size PPS
// sample of the pre-aggregated counts (sigma / sigma_pps ~ 1).

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/subset_sum.h"
#include "core/unbiased_space_saving.h"
#include "epoch_common.h"
#include "sampling/pps.h"
#include "stats/welford.h"

namespace dsketch {
namespace {

void Run(int argc, char** argv) {
  const int64_t items = bench::FlagInt(argc, argv, "items", 20000);
  const int64_t total = bench::FlagInt(argc, argv, "rows", 2000000);
  const int64_t m = bench::FlagInt(argc, argv, "bins", 1000);
  const int64_t trials = bench::FlagInt(argc, argv, "trials", 60);
  const int epochs = static_cast<int>(bench::FlagInt(argc, argv, "epochs", 10));

  bench::Banner("Figure 9: sd overestimation and comparison to PPS",
                "paper Fig. 9 (sigma_hat/sigma and sigma/sigma_pps per epoch)");

  bench::EpochSetup setup = bench::MakeEpochSetup(items, total, epochs);

  // --- Unbiased Space Saving over the sorted stream. ---
  std::vector<Welford> estimates(static_cast<size_t>(epochs));
  std::vector<Welford> sd_estimates(static_cast<size_t>(epochs));
  for (int64_t t = 0; t < trials; ++t) {
    UnbiasedSpaceSaving sketch(static_cast<size_t>(m),
                               static_cast<uint64_t>(150000 + t));
    for (uint64_t item : setup.rows) sketch.Update(item);
    std::vector<double> est(static_cast<size_t>(epochs), 0.0);
    std::vector<uint64_t> cs(static_cast<size_t>(epochs), 0);
    for (const SketchEntry& e : sketch.Entries()) {
      int ep = bench::EpochOf(setup, e.item);
      est[static_cast<size_t>(ep)] += static_cast<double>(e.count);
      ++cs[static_cast<size_t>(ep)];
    }
    double nmin = static_cast<double>(sketch.MinCount());
    for (int e = 0; e < epochs; ++e) {
      size_t idx = static_cast<size_t>(e);
      estimates[idx].Add(est[idx]);
      double var = nmin * nmin * static_cast<double>(cs[idx] > 0 ? cs[idx] : 1);
      sd_estimates[idx].Add(std::sqrt(var));
    }
  }

  // --- Poisson PPS variance of the pre-aggregated counts (paper eq. 1:
  // the analytic comparator of §6.4). ---
  std::vector<double> weights(setup.counts.begin(), setup.counts.end());
  auto probs = ThresholdedPpsProbabilities(weights, static_cast<size_t>(m));
  std::vector<double> pps_var(static_cast<size_t>(epochs), 0.0);
  for (size_t i = 0; i < weights.size(); ++i) {
    pps_var[static_cast<size_t>(bench::EpochOf(setup, i))] +=
        PpsItemVariance(weights[i], probs[i]);
  }

  std::printf("\n%-7s %14s %14s %14s %16s %16s\n", "epoch", "true_count",
              "sd_hat/sd", "sd/sd_pps", "realized_sd", "pps_sd");
  for (int e = 0; e < epochs; ++e) {
    size_t idx = static_cast<size_t>(e);
    double realized_sd = estimates[idx].stddev();
    double pps_sd = std::sqrt(pps_var[idx]);
    std::printf("%-7d %14.0f %14.3f %14.3f %16.1f %16.1f\n", e + 1,
                setup.epoch_truth[idx],
                realized_sd > 0 ? sd_estimates[idx].mean() / realized_sd : 0.0,
                pps_sd > 0 ? realized_sd / pps_sd : 0.0, realized_sd, pps_sd);
  }
  std::printf(
      "\n(paper: sd_hat/sd ~ 1 except tiny/huge counts where it\n"
      " overestimates; sd/sd_pps ~ 0.95-1.15 across epochs)\n");
}

}  // namespace
}  // namespace dsketch

int main(int argc, char** argv) {
  dsketch::Run(argc, argv);
  return 0;
}
