// Windowed sketching throughput: what the epoch ring costs to feed,
// advance, and query as the ring grows.
//
// Sweeps ring sizes and measures, per configuration:
//   * ingest throughput — epoch-stamped rows streamed through
//     UpdateBatch with row-count auto-advance (the hot path);
//   * advance cost — closing an epoch, with and without the decayed
//     accumulator fold (the fold runs a weighted merge, so decay mode
//     pays per epoch close, not per row);
//   * window-query latency — QueryWindow over last_k in {1, W/2, W}
//     (merge cost grows with the number of slots merged, not with the
//     stream length — the point of the mergeable-window construction).
//
// Records baselines with --json=PATH (record_baselines.sh →
// BENCH_window.json).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "stream/distributions.h"
#include "stream/generators.h"
#include "util/random.h"
#include "util/span.h"
#include "window/windowed_sketch.h"

namespace dsketch {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

void Run(int argc, char** argv) {
  const int64_t rows = bench::FlagInt(argc, argv, "rows", 4000000);
  const int64_t m = bench::FlagInt(argc, argv, "bins", 4096);
  const int64_t items = bench::FlagInt(argc, argv, "items", 100000);
  const double zipf = bench::FlagDouble(argc, argv, "zipf", 1.1);
  const int64_t queries = bench::FlagInt(argc, argv, "queries", 50);
  bench::JsonSink json(argc, argv, "window");

  bench::Banner("Windowed sketching: advance/query cost across ring sizes",
                "src/window epoch ring (ROADMAP sliding-window workload)");

  auto counts = ScaleCountsToTotal(
      ZipfCounts(static_cast<size_t>(items), zipf, 1000000), rows);
  Rng rng(31);
  std::vector<uint64_t> stream = PermutedStream(counts, rng);

  std::printf("\n%-8s %-7s %14s %14s %12s %12s %12s\n", "ring_W", "decay",
              "ingest_mrows_s", "advance_us", "q_last1_us", "q_half_us",
              "q_full_us");

  for (int64_t W : {int64_t{4}, int64_t{16}, int64_t{64}, int64_t{256}}) {
    for (int decay = 0; decay <= 1; ++decay) {
      WindowedSketchOptions opt;
      opt.window_epochs = static_cast<size_t>(W);
      opt.epoch_capacity = static_cast<size_t>(m);
      opt.merged_capacity = static_cast<size_t>(m);
      // 2W epochs over the stream: every slot sees real traffic and
      // half the epochs fall off the ring.
      opt.rows_per_epoch = stream.size() / static_cast<size_t>(2 * W) + 1;
      opt.half_life_epochs = decay == 1 ? static_cast<double>(W) / 4.0 : 0.0;
      opt.seed = 71;
      WindowedSpaceSaving sketch(opt);

      Clock::time_point start = Clock::now();
      sketch.UpdateBatch(Span<const uint64_t>(stream.data(), stream.size()));
      const double ingest_s = SecondsSince(start);

      // Isolated advance cost: close epochs beyond the stream (empty
      // epochs still pay ring rotation; with decay they pay the
      // accumulator scale + fold).
      const int kAdvances = 64;
      start = Clock::now();
      for (int i = 0; i < kAdvances; ++i) sketch.Advance();
      const double advance_s = SecondsSince(start);

      auto time_query = [&](size_t last_k) {
        Clock::time_point q = Clock::now();
        int64_t sink = 0;
        for (int64_t i = 0; i < queries; ++i) {
          sink += sketch
                      .QueryWindow(last_k, static_cast<size_t>(m),
                                   opt.seed + static_cast<uint64_t>(i))
                      .TotalCount();
        }
        double s = SecondsSince(q);
        if (sink == -1) std::printf("?");  // keep the merges live
        return s / static_cast<double>(queries);
      };
      const double q1 = time_query(1);
      const double qh = time_query(static_cast<size_t>(W) / 2);
      const double qw = time_query(static_cast<size_t>(W));

      const double mrows =
          static_cast<double>(stream.size()) / ingest_s / 1e6;
      const double adv_us = advance_s / kAdvances * 1e6;
      std::printf("%-8lld %-7s %14.2f %14.2f %12.1f %12.1f %12.1f\n",
                  static_cast<long long>(W), decay ? "on" : "off", mrows,
                  adv_us, q1 * 1e6, qh * 1e6, qw * 1e6);
      if (json.enabled()) {
        json.BeginRecord("window_throughput");
        json.Add("window_epochs", W);
        json.Add("decay", static_cast<int64_t>(decay));
        json.Add("rows", static_cast<int64_t>(stream.size()));
        json.Add("bins", m);
        json.Add("rows_per_epoch", static_cast<int64_t>(opt.rows_per_epoch));
        json.Add("ingest_mrows_per_s", mrows);
        json.Add("advance_us", adv_us);
        json.Add("query_last1_us", q1 * 1e6);
        json.Add("query_half_us", qh * 1e6);
        json.Add("query_full_us", qw * 1e6);
      }
    }
  }

  std::printf(
      "\n(ingest pays the flat UpdateBatch cost plus one ring rotation per\n"
      " epoch; decay adds a weighted fold per close. Query cost scales\n"
      " with merged slots — last_k=1 is a copy, the full ring a W-way\n"
      " unbiased reduction)\n");
}

}  // namespace
}  // namespace dsketch

int main(int argc, char** argv) {
  dsketch::Run(argc, argv);
  return 0;
}
