// Windowed sketching throughput: what the epoch ring costs to feed,
// advance, and query as the ring grows.
//
// Sweeps ring sizes and measures, per configuration:
//   * ingest throughput — epoch-stamped rows streamed through
//     UpdateBatch with row-count auto-advance (the hot path);
//   * advance cost — closing an epoch, with and without the decayed
//     accumulator fold (the fold batches closed epochs, so decay mode
//     amortizes the weighted merge across ring growth);
//   * window-query latency, cached vs uncached — QueryWindow (the
//     hierarchical merge cache: O(log W) cached partials per query)
//     against QueryWindowUncached (the from-scratch W-way pairwise
//     re-merge) over last_k in {1, W/2, W}. The two are bit-identical
//     in results; the sweep shows what the cache buys as W grows.
//
// Records baselines with --json=PATH (record_baselines.sh →
// BENCH_window.json). --smoke runs a tiny W=64 configuration and exits
// nonzero unless the cached full-window query is at least as fast as
// the uncached path (and their results match exactly) — the CI guard
// against the big-ring query cliff regressing.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "stream/distributions.h"
#include "stream/generators.h"
#include "util/random.h"
#include "util/span.h"
#include "window/windowed_sketch.h"

namespace dsketch {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

int Run(int argc, char** argv) {
  const bool smoke = bench::FlagSet(argc, argv, "smoke");
  const int64_t rows =
      bench::FlagInt(argc, argv, "rows", smoke ? 400000 : 4000000);
  const int64_t m = bench::FlagInt(argc, argv, "bins", 4096);
  const int64_t items = bench::FlagInt(argc, argv, "items", 100000);
  const double zipf = bench::FlagDouble(argc, argv, "zipf", 1.1);
  const int64_t queries =
      bench::FlagInt(argc, argv, "queries", smoke ? 16 : 50);
  bench::JsonSink json(argc, argv, "window");

  bench::Banner("Windowed sketching: advance/query cost across ring sizes",
                "src/window epoch ring (ROADMAP sliding-window workload)");

  auto counts = ScaleCountsToTotal(
      ZipfCounts(static_cast<size_t>(items), zipf, 1000000), rows);
  Rng rng(31);
  std::vector<uint64_t> stream = PermutedStream(counts, rng);

  if (json.enabled()) {
    json.BeginRecord("params");
    json.Add("rows", static_cast<int64_t>(stream.size()));
    json.Add("items", items);
    json.Add("bins", m);
    json.Add("zipf", zipf);
    json.Add("queries", queries);
    json.Add("hardware_concurrency",
             static_cast<int64_t>(std::thread::hardware_concurrency()));
  }

  std::printf("\n%-8s %-7s %14s %14s %12s %12s %12s %14s\n", "ring_W",
              "decay", "ingest_mrows_s", "advance_us", "q_last1_us",
              "q_half_us", "q_full_us", "q_full_raw_us");

  int failures = 0;
  const std::vector<int64_t> ring_sizes =
      smoke ? std::vector<int64_t>{64}
            : std::vector<int64_t>{4, 16, 64, 256};
  for (int64_t W : ring_sizes) {
    for (int decay = 0; decay <= 1; ++decay) {
      WindowedSketchOptions opt;
      opt.window_epochs = static_cast<size_t>(W);
      opt.epoch_capacity = static_cast<size_t>(m);
      opt.merged_capacity = static_cast<size_t>(m);
      // 2W epochs over the stream: every slot sees real traffic and
      // half the epochs fall off the ring.
      opt.rows_per_epoch = stream.size() / static_cast<size_t>(2 * W) + 1;
      opt.half_life_epochs = decay == 1 ? static_cast<double>(W) / 4.0 : 0.0;
      opt.seed = 71;
      WindowedSpaceSaving sketch(opt);

      Clock::time_point start = Clock::now();
      sketch.UpdateBatch(Span<const uint64_t>(stream.data(), stream.size()));
      const double ingest_s = SecondsSince(start);

      // Isolated advance cost: close epochs beyond the stream (empty
      // epochs still pay ring rotation; with decay they pay the
      // accumulator scale + fold).
      const int kAdvances = 64;
      start = Clock::now();
      for (int i = 0; i < kAdvances; ++i) sketch.Advance();
      const double advance_s = SecondsSince(start);

      auto time_query = [&](size_t last_k, bool cached, int64_t reps) {
        Clock::time_point q = Clock::now();
        int64_t sink = 0;
        for (int64_t i = 0; i < reps; ++i) {
          const uint64_t seed = opt.seed + static_cast<uint64_t>(i);
          sink += (cached ? sketch.QueryWindow(last_k,
                                               static_cast<size_t>(m), seed)
                          : sketch.QueryWindowUncached(
                                last_k, static_cast<size_t>(m), seed))
                      .TotalCount();
        }
        double s = SecondsSince(q);
        if (sink == -1) std::printf("?");  // keep the merges live
        return s / static_cast<double>(reps);
      };
      // Uncached re-merges are the expensive reference path: a few reps
      // bound the sweep's wall clock without blurring the comparison.
      const int64_t raw_reps = std::max<int64_t>(1, queries / 8);
      const double q1 = time_query(1, /*cached=*/true, queries);
      const double qh =
          time_query(static_cast<size_t>(W) / 2, /*cached=*/true, queries);
      const double qw =
          time_query(static_cast<size_t>(W), /*cached=*/true, queries);
      const double q1_raw = time_query(1, /*cached=*/false, raw_reps);
      const double qh_raw = time_query(static_cast<size_t>(W) / 2,
                                       /*cached=*/false, raw_reps);
      const double qw_raw =
          time_query(static_cast<size_t>(W), /*cached=*/false, raw_reps);

      // The cache must be an optimization, never a semantic change:
      // cached and uncached answers are bit-identical on the same state.
      const auto cached_entries =
          sketch.QueryWindow(static_cast<size_t>(W), static_cast<size_t>(m),
                             opt.seed)
              .Entries();
      const auto raw_entries =
          sketch
              .QueryWindowUncached(static_cast<size_t>(W),
                                   static_cast<size_t>(m), opt.seed)
              .Entries();
      if (cached_entries != raw_entries) {
        std::printf("FAIL: cached != uncached QueryWindow at W=%lld\n",
                    static_cast<long long>(W));
        ++failures;
      }

      const double mrows =
          static_cast<double>(stream.size()) / ingest_s / 1e6;
      const double adv_us = advance_s / kAdvances * 1e6;
      std::printf("%-8lld %-7s %14.2f %14.2f %12.1f %12.1f %12.1f %14.1f\n",
                  static_cast<long long>(W), decay ? "on" : "off", mrows,
                  adv_us, q1 * 1e6, qh * 1e6, qw * 1e6, qw_raw * 1e6);
      if (json.enabled()) {
        json.BeginRecord("window_throughput");
        json.Add("window_epochs", W);
        json.Add("decay", static_cast<int64_t>(decay));
        json.Add("rows", static_cast<int64_t>(stream.size()));
        json.Add("bins", m);
        json.Add("rows_per_epoch", static_cast<int64_t>(opt.rows_per_epoch));
        json.Add("ingest_mrows_per_s", mrows);
        json.Add("advance_us", adv_us);
        json.Add("query_last1_us", q1 * 1e6);
        json.Add("query_half_us", qh * 1e6);
        json.Add("query_full_us", qw * 1e6);
        json.Add("query_last1_uncached_us", q1_raw * 1e6);
        json.Add("query_half_uncached_us", qh_raw * 1e6);
        json.Add("query_full_uncached_us", qw_raw * 1e6);
      }
      if (smoke && qw > qw_raw) {
        std::printf(
            "FAIL: cached query_full (%.1f us) slower than uncached "
            "(%.1f us) at W=%lld\n",
            qw * 1e6, qw_raw * 1e6, static_cast<long long>(W));
        ++failures;
      }
    }
  }

  std::printf(
      "\n(ingest pays the flat UpdateBatch cost plus one ring rotation per\n"
      " epoch; decay folds closed epochs in batches. Cached queries\n"
      " assemble O(log W) merge-tree partials; q_full_raw_us is the\n"
      " from-scratch W-way re-merge the cache replaces)\n");
  if (smoke) {
    std::printf("smoke: %s\n", failures == 0 ? "OK" : "FAILED");
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace dsketch

int main(int argc, char** argv) { return dsketch::Run(argc, argv); }
