// Figure 1: merge behavior of Misra-Gries vs Unbiased Space Saving.
//
// Two sketches built on disjoint Weibull streams are merged back to the
// original capacity. The Misra-Gries reduction soft-thresholds: it removes
// mass from the small bins (the tail goes to zero, head counts shrink).
// The unbiased pairwise-PPS reduction instead moves tail mass onto
// surviving labels: the total is preserved exactly and the tail of the
// merged sketch carries *larger* bins than either input.
//
// Output: the bin-count profile (descending) of both merged sketches plus
// total-mass accounting, mirroring the two panels of Fig. 1.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/merge.h"
#include "core/unbiased_space_saving.h"
#include "stream/distributions.h"
#include "stream/generators.h"
#include "util/random.h"

namespace dsketch {
namespace {

void Run(int argc, char** argv) {
  const int64_t m = bench::FlagInt(argc, argv, "bins", 100);
  const int64_t items = bench::FlagInt(argc, argv, "items", 2000);
  const int64_t rows_per_half = bench::FlagInt(argc, argv, "rows", 200000);

  bench::Banner("Figure 1: what a merge does to the bin profile",
                "paper Fig. 1 (merge operation, Misra-Gries vs USS)");

  auto counts = ScaleCountsToTotal(
      WeibullCounts(static_cast<size_t>(items), 5e5, 0.3), rows_per_half);

  // Two disjoint populations: second half's item ids are offset.
  Rng rng(1);
  auto rows_a = PermutedStream(counts, rng);
  auto rows_b = PermutedStream(counts, rng);

  UnbiasedSpaceSaving a(static_cast<size_t>(m), 11);
  UnbiasedSpaceSaving b(static_cast<size_t>(m), 12);
  for (uint64_t item : rows_a) a.Update(item);
  for (uint64_t item : rows_b) b.Update(item + static_cast<uint64_t>(items));

  // Unbiased pairwise merge.
  UnbiasedSpaceSaving merged_uss = Merge(a, b, static_cast<size_t>(m), 13);
  // Misra-Gries soft-threshold merge over the same entries.
  auto combined = CombineEntries(a.Entries(), b.Entries());
  auto merged_mg = ReduceMisraGries(combined, static_cast<size_t>(m));
  std::sort(merged_mg.begin(), merged_mg.end(),
            [](const SketchEntry& x, const SketchEntry& y) {
              return x.count > y.count;
            });

  int64_t total_in = a.TotalCount() + b.TotalCount();
  int64_t total_uss = 0, total_mg = 0;
  for (const auto& e : merged_uss.Entries()) total_uss += e.count;
  for (const auto& e : merged_mg) total_mg += e.count;

  std::printf("input_total=%lld  merged_uss_total=%lld  merged_mg_total=%lld\n",
              static_cast<long long>(total_in),
              static_cast<long long>(total_uss),
              static_cast<long long>(total_mg));
  std::printf("uss preserves the total exactly; mg drops %lld (%.1f%%)\n\n",
              static_cast<long long>(total_in - total_mg),
              100.0 * static_cast<double>(total_in - total_mg) /
                  static_cast<double>(total_in));

  std::printf("%-6s %16s %16s\n", "bin", "misra_gries", "unbiased_ss");
  auto uss_entries = merged_uss.Entries();
  for (int64_t i = 0; i < m; i += m / 20 > 0 ? m / 20 : 1) {
    long long mg_count =
        static_cast<size_t>(i) < merged_mg.size() ? merged_mg[static_cast<size_t>(i)].count : 0;
    long long uss_count =
        static_cast<size_t>(i) < uss_entries.size() ? uss_entries[static_cast<size_t>(i)].count : 0;
    std::printf("%-6lld %16lld %16lld\n", static_cast<long long>(i), mg_count,
                uss_count);
  }

  // Tail view: the last bins show MG truncation vs USS mass relocation.
  std::printf("\ntail (smallest 5 bins):\n");
  for (size_t i = uss_entries.size() >= 5 ? uss_entries.size() - 5 : 0;
       i < uss_entries.size(); ++i) {
    long long mg_count = i < merged_mg.size() ? merged_mg[i].count : 0;
    std::printf("%-6zu %16lld %16lld\n", i, mg_count,
                static_cast<long long>(uss_entries[i].count));
  }
}

}  // namespace
}  // namespace dsketch

int main(int argc, char** argv) {
  dsketch::Run(argc, argv);
  return 0;
}
