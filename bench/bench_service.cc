// Service-layer round-trip throughput: what the framed protocol costs on
// top of the raw ingest/query paths. One server thread, one client, an
// in-memory duplex carrying byte-identical frames to a socket:
//
//   * ingest    — rows/s through framed INGEST_BATCH at several batch
//     sizes, vs the same rows pushed straight into a ShardedSketchSource
//     (the no-protocol upper bound).
//   * queries   — round-trips/s for QUERY_SUM (empty and filtered
//     predicate), QUERY_TOPK, and QUERY_GROUPBY against live state.
//   * snapshot  — SNAPSHOT/RESTORE hop: blob bytes and replication
//     round-trip time.
//
// Records baselines with --json=PATH (bench/record_baselines.sh ->
// BENCH_service.json).

#include <chrono>
#include <cstdio>
#include <functional>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/attribute_table.h"
#include "query/sketch_source.h"
#include "service/client.h"
#include "service/server.h"
#include "service/transport.h"
#include "stream/distributions.h"
#include "stream/generators.h"
#include "util/random.h"

namespace dsketch {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// The server records per-opcode latency histograms into the global
// metrics registry; benches read them back as snapshot deltas so the
// tail percentiles cover exactly the timed loop. All-zero under
// -DDSKETCH_NO_METRICS (the params record says metrics="off").
obs::HistogramSnapshot LatencySnapshot(const char* opcode) {
  const obs::Histogram* h = obs::MetricsRegistry::Global().FindHistogram(
      std::string("dsketch_service_request_latency_us{opcode=\"") + opcode +
      "\"}");
  return h != nullptr ? h->Snapshot() : obs::HistogramSnapshot{};
}

void Run(int argc, char** argv) {
  const int64_t rows_n = bench::FlagInt(argc, argv, "rows", 2000000);
  const int64_t items = bench::FlagInt(argc, argv, "items", 100000);
  const int64_t shards = bench::FlagInt(argc, argv, "shards", 2);
  const int64_t capacity = bench::FlagInt(argc, argv, "bins", 4096);
  const int64_t query_iters = bench::FlagInt(argc, argv, "query_iters", 2000);
  bench::JsonSink json(argc, argv, "service");

  bench::Banner("Service layer: framed ingest/query round-trip throughput",
                "streaming-service deployment of the paper's sketches");

  auto counts = ScaleCountsToTotal(
      ZipfCounts(static_cast<size_t>(items), 1.1, 2000), rows_n);
  Rng rng(11);
  auto rows = PermutedStream(counts, rng);
  AttributeTable attrs(1);
  for (int64_t i = 0; i < items; ++i) {
    attrs.AddItem({static_cast<uint32_t>(i % 16)});
  }

  if (json.enabled()) {
    json.BeginRecord("params");
    json.Add("rows", static_cast<int64_t>(rows.size()));
    json.Add("items", items);
    json.Add("shards", shards);
    json.Add("bins", capacity);
    json.Add("hardware_concurrency",
             static_cast<int64_t>(std::thread::hardware_concurrency()));
    json.Add("metrics", std::string(obs::MetricsBuildMode()));
  }

  SketchServerOptions options;
  options.shard.num_shards = static_cast<size_t>(shards);
  options.shard.shard_capacity = static_cast<size_t>(capacity);
  options.merged_capacity = static_cast<size_t>(capacity);

  // --- ingest: framed vs direct ---------------------------------------
  std::printf("\n%-12s %14s %16s %14s\n", "batch_rows", "framed_Mrows_s",
              "direct_Mrows_s", "protocol_cost");
  for (int64_t batch : {1024, 8192, 65536}) {
    // Framed path: client -> frames -> server -> sharded source.
    double framed_s;
    {
      InMemoryDuplex duplex;
      SketchServer server(options, &attrs);
      std::thread serve([&] { server.Serve(duplex.server()); });
      SketchClient client(duplex.client());
      auto start = Clock::now();
      for (size_t pos = 0; pos < rows.size();
           pos += static_cast<size_t>(batch)) {
        size_t len =
            std::min(static_cast<size_t>(batch), rows.size() - pos);
        client.IngestBatch(Span<const uint64_t>(rows.data() + pos, len));
      }
      client.Stats();  // forces a flush so all rows are applied
      framed_s = SecondsSince(start);
      client.Shutdown();
      serve.join();
    }
    // Direct path: same batches straight into the source.
    double direct_s;
    {
      ShardedSketchSource source(options.shard,
                                 static_cast<size_t>(capacity), 1);
      auto start = Clock::now();
      for (size_t pos = 0; pos < rows.size();
           pos += static_cast<size_t>(batch)) {
        size_t len =
            std::min(static_cast<size_t>(batch), rows.size() - pos);
        source.Ingest(Span<const uint64_t>(rows.data() + pos, len));
      }
      source.Flush();
      direct_s = SecondsSince(start);
    }
    const double framed_rate = static_cast<double>(rows.size()) / framed_s / 1e6;
    const double direct_rate = static_cast<double>(rows.size()) / direct_s / 1e6;
    std::printf("%-12lld %14.2f %16.2f %13.1f%%\n",
                static_cast<long long>(batch), framed_rate, direct_rate,
                100.0 * (direct_rate - framed_rate) / direct_rate);
    if (json.enabled()) {
      json.BeginRecord("ingest");
      json.Add("batch_rows", batch);
      json.Add("framed_mrows_per_s", framed_rate);
      json.Add("direct_mrows_per_s", direct_rate);
    }
  }

  // --- queries over live state ----------------------------------------
  InMemoryDuplex duplex;
  SketchServer server(options, &attrs);
  std::thread serve([&] { server.Serve(duplex.server()); });
  SketchClient client(duplex.client());
  for (size_t pos = 0; pos < rows.size(); pos += 65536) {
    size_t len = std::min<size_t>(65536, rows.size() - pos);
    client.IngestBatch(Span<const uint64_t>(rows.data() + pos, len));
  }

  struct QueryCase {
    const char* name;
    const char* opcode;  // latency-histogram label on the server side
    std::function<bool()> run;
  };
  PredicateSpec filtered = PredicateSpec().WhereIn(0, {1, 5, 9});
  std::vector<QueryCase> cases;
  cases.push_back(
      {"sum_all", "query_sum", [&] { return client.QuerySum().has_value(); }});
  cases.push_back({"sum_filtered", "query_sum",
                   [&] { return client.QuerySum(filtered).has_value(); }});
  cases.push_back({"topk_100", "query_topk",
                   [&] { return client.QueryTopK(100).has_value(); }});
  cases.push_back({"groupby_dim0", "query_groupby",
                   [&] { return client.QueryGroupBy(0).has_value(); }});

  std::printf("\n%-14s %14s %14s %8s %8s %8s\n", "query", "round_trips_s",
              "us_per_query", "p50_us", "p95_us", "p99_us");
  for (const QueryCase& c : cases) {
    c.run();  // warm the merged snapshot cache
    const obs::HistogramSnapshot before = LatencySnapshot(c.opcode);
    auto start = Clock::now();
    for (int64_t i = 0; i < query_iters; ++i) {
      if (!c.run()) break;
    }
    double elapsed = SecondsSince(start);
    double qps = static_cast<double>(query_iters) / elapsed;
    // Server-side handler latency for just this loop's requests — the
    // gap against us_per_query (wall clock) is framing + transport.
    const obs::HistogramSnapshot lat = LatencySnapshot(c.opcode).Since(before);
    const double p50 = lat.Percentile(50);
    const double p95 = lat.Percentile(95);
    const double p99 = lat.Percentile(99);
    std::printf("%-14s %14.0f %14.2f %8.1f %8.1f %8.1f\n", c.name, qps,
                1e6 / qps, p50, p95, p99);
    if (json.enabled()) {
      json.BeginRecord("query");
      json.Add("query", std::string(c.name));
      json.Add("round_trips_per_s", qps);
      json.Add("p50_us", p50);
      json.Add("p95_us", p95);
      json.Add("p99_us", p99);
    }
  }

  // --- trace-capture overhead -----------------------------------------
  // The same live QUERY_SUM loop with request tracing off vs every
  // request captured in full. "off" is what every request pays
  // unconditionally (span clock reads + flight-recorder ring writes);
  // "on" adds the buffered span tree and the publish into the recent
  // ring — the gap is the price of --trace-sample=1.
  struct TraceCost {
    double qps;
    double p99;
  };
  auto measure_trace = [&]() -> TraceCost {
    client.QuerySum();  // warm the merged snapshot cache
    const obs::HistogramSnapshot before = LatencySnapshot("query_sum");
    auto t0 = Clock::now();
    for (int64_t i = 0; i < query_iters; ++i) {
      if (!client.QuerySum().has_value()) break;
    }
    const double elapsed = SecondsSince(t0);
    const obs::HistogramSnapshot lat =
        LatencySnapshot("query_sum").Since(before);
    return {static_cast<double>(query_iters) / elapsed, lat.Percentile(99)};
  };
  obs::TraceCollector::Global().Configure({/*sample_every=*/0,
                                           /*slow_request_us=*/0});
  const TraceCost trace_off = measure_trace();
  obs::TraceCollector::Global().Configure({/*sample_every=*/1,
                                           /*slow_request_us=*/0});
  const TraceCost trace_on = measure_trace();
  obs::TraceCollector::Global().Configure({/*sample_every=*/0,
                                           /*slow_request_us=*/0});
  std::printf(
      "\ntrace capture: off %.0f rt/s (p99 %.1f us) -> every-request "
      "%.0f rt/s (p99 %.1f us)\n",
      trace_off.qps, trace_off.p99, trace_on.qps, trace_on.p99);
  if (json.enabled()) {
    json.BeginRecord("trace_overhead");
    json.Add("qps_off", trace_off.qps);
    json.Add("qps_on", trace_on.qps);
    json.Add("p99_us_off", trace_off.p99);
    json.Add("p99_us_on", trace_on.p99);
  }

  // --- snapshot / restore hop -----------------------------------------
  auto start = Clock::now();
  auto blob = client.Snapshot();
  double snapshot_s = SecondsSince(start);
  double restore_s = 0.0;
  if (blob.has_value()) {
    SketchServerOptions options_b = options;
    options_b.shard.seed = 17;
    options_b.seed = 17;
    InMemoryDuplex duplex_b;
    SketchServer replica(options_b, &attrs);
    std::thread serve_b([&] { replica.Serve(duplex_b.server()); });
    SketchClient client_b(duplex_b.client());
    start = Clock::now();
    client_b.Restore(*blob);
    client_b.QuerySum();  // forces the merged view rebuild
    restore_s = SecondsSince(start);
    client_b.Shutdown();
    serve_b.join();
  }
  std::printf("\nsnapshot: %zu bytes in %.2f ms; replica restore+query %.2f ms\n",
              blob ? blob->size() : 0, 1e3 * snapshot_s, 1e3 * restore_s);
  if (json.enabled()) {
    json.BeginRecord("replication");
    json.Add("snapshot_bytes", static_cast<int64_t>(blob ? blob->size() : 0));
    json.Add("snapshot_ms", 1e3 * snapshot_s);
    json.Add("restore_query_ms", 1e3 * restore_s);
  }

  client.Shutdown();
  serve.join();

  std::printf(
      "\n(framed vs direct gap = protocol + frame + response round-trip\n"
      " cost; queries pay one merged-snapshot rebuild when state changed\n"
      " since the last query, then serve from the cached view)\n");
}

}  // namespace
}  // namespace dsketch

int main(int argc, char** argv) {
  dsketch::Run(argc, argv);
  return 0;
}
