// Figure 4: like Figure 3 but with m = 100 bins and the Bottom-k uniform
// item sampler added. The paper's claim: Unbiased Space Saving performs
// orders of magnitude better than uniform item sampling on skewed data
// (and the m=100 errors are higher than m=200 but qualitatively similar).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/unbiased_space_saving.h"
#include "sampling/bottom_k.h"
#include "sampling/priority_sampling.h"
#include "stats/summary.h"
#include "stream/generators.h"
#include "subset_workload.h"
#include "util/random.h"

namespace dsketch {
namespace {

void RunDistribution(const std::string& dist, int64_t m, int64_t items,
                     int64_t total, int64_t trials, int64_t subsets) {
  auto counts = bench::MakeDistribution(dist, static_cast<size_t>(items),
                                        total);
  auto subs = bench::DrawSubsets(counts, static_cast<int>(subsets), 100,
                                 0xF04 + m);

  std::vector<ErrorAccumulator> uss_err(subs.size()), pri_err(subs.size()),
      bk_err(subs.size());
  for (int64_t t = 0; t < trials; ++t) {
    Rng rng(static_cast<uint64_t>(40000 + t));
    auto rows = PermutedStream(counts, rng);
    UnbiasedSpaceSaving uss(static_cast<size_t>(m),
                            static_cast<uint64_t>(50000 + t));
    BottomKSampler bk(static_cast<size_t>(m),
                      static_cast<uint64_t>(60000 + t));
    for (uint64_t item : rows) {
      uss.Update(item);
      bk.Update(item);
    }
    PrioritySampler pri(static_cast<size_t>(m),
                        static_cast<uint64_t>(70000 + t));
    for (size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] > 0) pri.Add(i, static_cast<double>(counts[i]));
    }

    auto uss_entries = uss.Entries();
    auto pri_sample = pri.Sample();
    auto bk_sample = bk.Sample();
    for (size_t s = 0; s < subs.size(); ++s) {
      const auto& subset = subs[s].items;
      double uss_est = 0, pri_est = 0, bk_est = 0;
      for (const auto& e : uss_entries) {
        if (subset.count(e.item)) uss_est += static_cast<double>(e.count);
      }
      for (const auto& e : pri_sample) {
        if (subset.count(e.item)) pri_est += e.weight;
      }
      for (const auto& e : bk_sample) {
        if (subset.count(e.item)) bk_est += e.weight;
      }
      uss_err[s].Add(uss_est, subs[s].truth);
      pri_err[s].Add(pri_est, subs[s].truth);
      bk_err[s].Add(bk_est, subs[s].truth);
    }
  }

  double min_truth = 1e300, max_truth = 0;
  for (const auto& s : subs) {
    if (s.truth > 0) {
      min_truth = std::min(min_truth, s.truth);
      max_truth = std::max(max_truth, s.truth);
    }
  }
  LogBucketCurve uss_curve(min_truth, max_truth + 1, 8);
  LogBucketCurve pri_curve(min_truth, max_truth + 1, 8);
  LogBucketCurve bk_curve(min_truth, max_truth + 1, 8);
  for (size_t s = 0; s < subs.size(); ++s) {
    if (subs[s].truth <= 0) continue;
    uss_curve.Add(subs[s].truth, uss_err[s].rrmse());
    pri_curve.Add(subs[s].truth, pri_err[s].rrmse());
    bk_curve.Add(subs[s].truth, bk_err[s].rrmse());
  }

  std::printf("\ndistribution=%s  bins=%lld  rows=%lld\n", dist.c_str(),
              static_cast<long long>(m), static_cast<long long>(total));
  std::printf("%-16s %14s %18s %14s\n", "true_count", "uss_rel_err",
              "priority_rel_err", "bottomk_rel_err");
  auto up = uss_curve.Points();
  auto pp = pri_curve.Points();
  auto bp = bk_curve.Points();
  for (size_t b = 0; b < up.size() && b < pp.size() && b < bp.size(); ++b) {
    std::printf("%-16.0f %14.4f %18.4f %14.4f\n", up[b].x_center,
                up[b].mean_y, pp[b].mean_y, bp[b].mean_y);
  }

  // Aggregate advantage over uniform sampling.
  double uss_mse = 0, bk_mse = 0;
  for (size_t s = 0; s < subs.size(); ++s) {
    uss_mse += uss_err[s].mse();
    bk_mse += bk_err[s].mse();
  }
  std::printf("aggregate bottomk_mse/uss_mse = %.1fx\n",
              bk_mse / (uss_mse > 0 ? uss_mse : 1));
}

void Run(int argc, char** argv) {
  const int64_t m = bench::FlagInt(argc, argv, "bins", 100);
  const int64_t items = bench::FlagInt(argc, argv, "items", 1000);
  const int64_t total = bench::FlagInt(argc, argv, "rows", 300000);
  const int64_t trials = bench::FlagInt(argc, argv, "trials", 30);
  const int64_t subsets = bench::FlagInt(argc, argv, "subsets", 150);

  bench::Banner("Figure 4: adding Bottom-k uniform sampling (m=100)",
                "paper Fig. 4 (USS orders of magnitude better than Bottom-k)");
  for (const char* dist :
       {"weibull_0.32", "geometric_0.03", "weibull_0.15"}) {
    RunDistribution(dist, m, items, total, trials, subsets);
  }
}

}  // namespace
}  // namespace dsketch

int main(int argc, char** argv) {
  dsketch::Run(argc, argv);
  return 0;
}
