// Figure 3: smoothed relative error vs true subset count, Unbiased Space
// Saving (raw disaggregated rows) vs priority sampling (pre-aggregated),
// m = 200 bins, for the paper's three distributions:
// Weibull(5e5, 0.32), Geometric(0.03), Weibull(5e5, 0.15).
//
// Expected shape (paper): errors fall with the true count; USS matches or
// beats priority sampling; accuracy improves with skew.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/subset_sum.h"
#include "core/unbiased_space_saving.h"
#include "sampling/priority_sampling.h"
#include "stats/summary.h"
#include "stream/generators.h"
#include "subset_workload.h"
#include "util/random.h"

namespace dsketch {
namespace {

void RunDistribution(const std::string& dist, int64_t m, int64_t items,
                     int64_t total, int64_t trials, int64_t subsets) {
  auto counts = bench::MakeDistribution(dist, static_cast<size_t>(items),
                                        total);
  auto subs = bench::DrawSubsets(counts, static_cast<int>(subsets), 100,
                                 0xF16 + m);

  std::vector<ErrorAccumulator> uss_err(subs.size()), pri_err(subs.size());
  for (int64_t t = 0; t < trials; ++t) {
    Rng rng(static_cast<uint64_t>(10000 + t));
    auto rows = PermutedStream(counts, rng);
    UnbiasedSpaceSaving uss(static_cast<size_t>(m),
                            static_cast<uint64_t>(20000 + t));
    for (uint64_t item : rows) uss.Update(item);

    PrioritySampler pri(static_cast<size_t>(m),
                        static_cast<uint64_t>(30000 + t));
    for (size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] > 0) pri.Add(i, static_cast<double>(counts[i]));
    }

    auto uss_entries = uss.Entries();
    auto pri_sample = pri.Sample();
    for (size_t s = 0; s < subs.size(); ++s) {
      const auto& subset = subs[s].items;
      double uss_est = 0, pri_est = 0;
      for (const auto& e : uss_entries) {
        if (subset.count(e.item)) uss_est += static_cast<double>(e.count);
      }
      for (const auto& e : pri_sample) {
        if (subset.count(e.item)) pri_est += e.weight;
      }
      uss_err[s].Add(uss_est, subs[s].truth);
      pri_err[s].Add(pri_est, subs[s].truth);
    }
  }

  // Smoothed curve: bucket subsets by true count, mean relative RMSE.
  double min_truth = 1e300, max_truth = 0;
  for (const auto& s : subs) {
    if (s.truth > 0) {
      min_truth = std::min(min_truth, s.truth);
      max_truth = std::max(max_truth, s.truth);
    }
  }
  LogBucketCurve uss_curve(min_truth, max_truth + 1, 8);
  LogBucketCurve pri_curve(min_truth, max_truth + 1, 8);
  for (size_t s = 0; s < subs.size(); ++s) {
    if (subs[s].truth <= 0) continue;
    uss_curve.Add(subs[s].truth, uss_err[s].rrmse());
    pri_curve.Add(subs[s].truth, pri_err[s].rrmse());
  }

  std::printf("\ndistribution=%s  bins=%lld  rows=%lld\n", dist.c_str(),
              static_cast<long long>(m), static_cast<long long>(total));
  std::printf("%-16s %14s %18s %12s\n", "true_count", "uss_rel_err",
              "priority_rel_err", "subsets");
  auto up = uss_curve.Points();
  auto pp = pri_curve.Points();
  for (size_t b = 0; b < up.size() && b < pp.size(); ++b) {
    std::printf("%-16.0f %14.4f %18.4f %12llu\n", up[b].x_center,
                up[b].mean_y, pp[b].mean_y,
                static_cast<unsigned long long>(up[b].count));
  }
}

void Run(int argc, char** argv) {
  const int64_t m = bench::FlagInt(argc, argv, "bins", 200);
  const int64_t items = bench::FlagInt(argc, argv, "items", 1000);
  const int64_t total = bench::FlagInt(argc, argv, "rows", 300000);
  const int64_t trials = bench::FlagInt(argc, argv, "trials", 30);
  const int64_t subsets = bench::FlagInt(argc, argv, "subsets", 150);

  bench::Banner("Figure 3: relative error vs true subset count (m=200)",
                "paper Fig. 3 (USS vs priority sampling, 3 distributions)");
  for (const char* dist :
       {"weibull_0.32", "geometric_0.03", "weibull_0.15"}) {
    RunDistribution(dist, m, items, total, trials, subsets);
  }
}

}  // namespace
}  // namespace dsketch

int main(int argc, char** argv) {
  dsketch::Run(argc, argv);
  return 0;
}
