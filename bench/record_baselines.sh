#!/usr/bin/env sh
# Records machine-readable performance baselines for the perf trajectory.
#
# Usage: bench/record_baselines.sh [build_dir] [out_dir]
#
# Runs the throughput bench with its --json sink and stores the result as
# BENCH_throughput.json in the repository root (or out_dir). Later PRs
# compare their sweeps against these files to prove speedups / catch
# regressions; the files also record hardware_concurrency so shard
# scaling numbers are interpreted against the machine that produced them.

set -eu

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-.}"

if [ ! -x "${BUILD_DIR}/bench/bench_throughput" ]; then
  echo "error: ${BUILD_DIR}/bench/bench_throughput not built" >&2
  echo "build first: cmake --preset release && cmake --build build -j" >&2
  exit 1
fi

"${BUILD_DIR}/bench/bench_throughput" \
  --json="${OUT_DIR}/BENCH_throughput.json"

echo ""
echo "baselines written to ${OUT_DIR}/BENCH_throughput.json"
