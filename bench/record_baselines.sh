#!/usr/bin/env sh
# Records machine-readable performance baselines for the perf trajectory.
#
# Usage: bench/record_baselines.sh [build_dir] [out_dir]
#
# Runs each bench that has a --json sink and stores the results as
# BENCH_*.json in the repository root (or out_dir):
#   BENCH_throughput.json  — row-vs-batch / batch-size / shard sweeps
#   BENCH_wire.json        — wire v1 vs v2 size + encode/decode throughput,
#                            plus frozen-image size / freeze throughput /
#                            restore-to-first-answer vs v2 decode
#   BENCH_fig10_epoch.json — per-epoch %RRMSE: USS/DSS, decayed, window,
#                            plus the §6.3 bursty / all-distinct patterns
#   BENCH_service.json     — framed ingest + query round-trip throughput
#   BENCH_window.json      — epoch-ring ingest/advance/query cost across
#                            ring sizes, decay on/off, cached vs uncached
#                            window queries
# Later PRs compare their sweeps against these files to prove speedups /
# catch regressions; every file records hardware_concurrency (BENCH_window
# carries it in its "params" record, like BENCH_service) so scaling
# numbers are interpreted against the machine that produced them.

set -eu

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-.}"

for bench in bench_throughput bench_wire bench_fig10_epoch_rrmse \
             bench_service bench_window; do
  if [ ! -x "${BUILD_DIR}/bench/${bench}" ]; then
    echo "error: ${BUILD_DIR}/bench/${bench} not built" >&2
    echo "build first: cmake --preset release && cmake --build build -j" >&2
    exit 1
  fi
done

"${BUILD_DIR}/bench/bench_throughput" \
  --json="${OUT_DIR}/BENCH_throughput.json"

"${BUILD_DIR}/bench/bench_wire" \
  --json="${OUT_DIR}/BENCH_wire.json"

"${BUILD_DIR}/bench/bench_fig10_epoch_rrmse" \
  --json="${OUT_DIR}/BENCH_fig10_epoch.json"

"${BUILD_DIR}/bench/bench_service" \
  --json="${OUT_DIR}/BENCH_service.json"

"${BUILD_DIR}/bench/bench_window" \
  --json="${OUT_DIR}/BENCH_window.json"

echo ""
echo "baselines written to ${OUT_DIR}/BENCH_{throughput,wire,fig10_epoch,service,window}.json"
