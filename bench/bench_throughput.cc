// Microbenchmarks for the §6.7 cost claims: O(1) Space Saving updates
// (unbiased and deterministic), amortized O(1) Misra-Gries, the O(log m)
// weighted sketch, the disaggregated baselines, merge cost, and query
// cost. Run with --benchmark_filter=... to narrow.

#include <cstdint>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/deterministic_space_saving.h"
#include "core/merge.h"
#include "core/subset_sum.h"
#include "core/unbiased_space_saving.h"
#include "core/weighted_space_saving.h"
#include "frequency/count_min.h"
#include "frequency/misra_gries.h"
#include "sampling/bottom_k.h"
#include "sampling/sample_and_hold.h"
#include "stream/distributions.h"
#include "stream/generators.h"
#include "util/random.h"

namespace dsketch {
namespace {

// A reusable skewed row stream; Zipf-ish so sketches see realistic mixes
// of tracked and untracked items.
const std::vector<uint64_t>& SharedStream() {
  static const std::vector<uint64_t>* stream = [] {
    auto counts = ScaleCountsToTotal(WeibullCounts(100000, 5e5, 0.3),
                                     2000000);
    Rng rng(1);
    return new std::vector<uint64_t>(PermutedStream(counts, rng));
  }();
  return *stream;
}

void BM_UnbiasedSpaceSavingUpdate(benchmark::State& state) {
  const auto& rows = SharedStream();
  UnbiasedSpaceSaving sketch(static_cast<size_t>(state.range(0)), 2);
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(rows[i]);
    if (++i == rows.size()) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UnbiasedSpaceSavingUpdate)->Arg(100)->Arg(1000)->Arg(10000);

void BM_DeterministicSpaceSavingUpdate(benchmark::State& state) {
  const auto& rows = SharedStream();
  DeterministicSpaceSaving sketch(static_cast<size_t>(state.range(0)), 3);
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(rows[i]);
    if (++i == rows.size()) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeterministicSpaceSavingUpdate)->Arg(100)->Arg(1000)->Arg(10000);

void BM_MisraGriesUpdate(benchmark::State& state) {
  const auto& rows = SharedStream();
  MisraGries sketch(static_cast<size_t>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(rows[i]);
    if (++i == rows.size()) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MisraGriesUpdate)->Arg(1000);

void BM_WeightedSpaceSavingUpdate(benchmark::State& state) {
  const auto& rows = SharedStream();
  WeightedSpaceSaving sketch(static_cast<size_t>(state.range(0)), 4);
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(rows[i], 1.0);
    if (++i == rows.size()) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WeightedSpaceSavingUpdate)->Arg(1000);

void BM_AdaptiveSampleAndHoldUpdate(benchmark::State& state) {
  const auto& rows = SharedStream();
  AdaptiveSampleAndHold sketch(static_cast<size_t>(state.range(0)), 5);
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(rows[i]);
    if (++i == rows.size()) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AdaptiveSampleAndHoldUpdate)->Arg(1000);

void BM_BottomKUpdate(benchmark::State& state) {
  const auto& rows = SharedStream();
  BottomKSampler sketch(static_cast<size_t>(state.range(0)), 6);
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(rows[i]);
    if (++i == rows.size()) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BottomKUpdate)->Arg(1000);

void BM_CountMinUpdate(benchmark::State& state) {
  const auto& rows = SharedStream();
  CountMin sketch(static_cast<size_t>(state.range(0)), 4, 7);
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(rows[i]);
    if (++i == rows.size()) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountMinUpdate)->Arg(1024);

void BM_UnbiasedMerge(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  UnbiasedSpaceSaving a(m, 8), b(m, 9);
  const auto& rows = SharedStream();
  for (size_t i = 0; i < rows.size() / 2; ++i) {
    a.Update(rows[i]);
    b.Update(rows[rows.size() / 2 + i]);
  }
  uint64_t seed = 10;
  for (auto _ : state) {
    UnbiasedSpaceSaving merged = Merge(a, b, m, seed++);
    benchmark::DoNotOptimize(merged.TotalCount());
  }
}
BENCHMARK(BM_UnbiasedMerge)->Arg(100)->Arg(1000)->Arg(10000);

void BM_SubsetSumQuery(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  UnbiasedSpaceSaving sketch(m, 11);
  for (uint64_t item : SharedStream()) sketch.Update(item);
  for (auto _ : state) {
    auto r = EstimateSubsetSum(sketch,
                               [](uint64_t item) { return item % 3 == 0; });
    benchmark::DoNotOptimize(r.estimate);
  }
}
BENCHMARK(BM_SubsetSumQuery)->Arg(1000)->Arg(10000);

void BM_EstimateCountLookup(benchmark::State& state) {
  UnbiasedSpaceSaving sketch(10000, 12);
  for (uint64_t item : SharedStream()) sketch.Update(item);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.EstimateCount(i++ % 100000));
  }
}
BENCHMARK(BM_EstimateCountLookup);

}  // namespace
}  // namespace dsketch

BENCHMARK_MAIN();
