// Ingestion-path throughput: the §6.7 cost claims (O(1) Space Saving
// updates, amortized O(1) Misra-Gries, O(log m) weighted updates) plus
// the two sweeps behind the batched/sharded ingestion pipeline:
//
//   * row_vs_batch   — per-row Update vs UpdateBatch across sketch sizes
//                      and workload shapes (the batch path's software
//                      pipelining pays off once the sketch outgrows the
//                      cache hierarchy);
//   * batch_size     — UpdateBatch throughput as a function of the batch
//                      the caller hands over;
//   * shard_scaling  — ShardedSketch ingest throughput vs shard count
//                      (bounded by hardware_concurrency, recorded in the
//                      output for interpretation);
//   * micro          — per-sketch single-row update costs, merge cost,
//                      and query cost.
//
// Flags: --rows=N stream length, --reps=N repetitions (max is reported),
// --json=PATH writes machine-readable baselines (recorded as
// BENCH_throughput.json by bench/record_baselines.sh). The
// multi-million-bin configurations run by default (they are where the
// batch pipeline pays off); pass --full=0 --rows=2000000 --reps=1 for a
// quick run.
//
// --smoke replaces the sweeps with a CI correctness gate: a small
// configuration covering both UpdateBatch bodies (plain and software-
// pipelined) that asserts batch ingestion is bit-identical to per-row
// updates and that throughput is sane (> 0), exiting nonzero otherwise.
//
// Every JSON output starts with a "params" record (hardware threads,
// allocator mode, probe ISA, compiler) so recorded baselines say what
// machine state produced them.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/deterministic_space_saving.h"
#include "core/merge.h"
#include "core/subset_sum.h"
#include "core/unbiased_space_saving.h"
#include "core/weighted_space_saving.h"
#include "frequency/count_min.h"
#include "frequency/misra_gries.h"
#include "sampling/bottom_k.h"
#include "sampling/sample_and_hold.h"
#include "shard/sharded_sketch.h"
#include "stream/distributions.h"
#include "stream/generators.h"
#include "util/flat_map.h"
#include "util/mmap_array.h"
#include "util/random.h"
#include "util/span.h"

namespace dsketch {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Runs `fn` `reps` times and returns the best rows/s (in millions).
template <typename Fn>
double BestMrows(size_t rows, int reps, Fn&& fn) {
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    auto t0 = Clock::now();
    fn();
    double mrows = static_cast<double>(rows) / Seconds(t0) / 1e6;
    if (mrows > best) best = mrows;
  }
  return best;
}

struct Workload {
  const char* name;
  std::vector<uint64_t> rows;
};

void RowVsBatchSweep(const std::vector<Workload>& workloads,
                     const std::vector<size_t>& sizes, int reps,
                     bench::JsonSink& sink) {
  std::printf("\n-- row_vs_batch: per-row Update vs UpdateBatch --\n");
  std::printf("%-10s %-9s %12s %12s %9s\n", "workload", "m", "row Mrows/s",
              "batch Mr/s", "speedup");
  for (const Workload& w : workloads) {
    for (size_t m : sizes) {
      double row = BestMrows(w.rows.size(), reps, [&] {
        UnbiasedSpaceSaving s(m, 2);
        for (uint64_t x : w.rows) s.Update(x);
      });
      double batch = BestMrows(w.rows.size(), reps, [&] {
        UnbiasedSpaceSaving s(m, 2);
        s.UpdateBatch(w.rows);
      });
      std::printf("%-10s %-9zu %12.1f %12.1f %8.2fx\n", w.name, m, row,
                  batch, batch / row);
      if (sink.enabled()) {
        sink.BeginRecord("row_vs_batch");
        sink.Add("workload", w.name);
        sink.Add("m", static_cast<int64_t>(m));
        sink.Add("row_mrows", row);
        sink.Add("batch_mrows", batch);
        sink.Add("speedup", batch / row);
      }
    }
  }
}

void BatchSizeSweep(const Workload& w, size_t m, int reps,
                    bench::JsonSink& sink) {
  std::printf("\n-- batch_size: UpdateBatch chunk size (m=%zu, %s) --\n", m,
              w.name);
  std::printf("%-10s %12s\n", "batch", "Mrows/s");
  for (size_t batch : {size_t{64}, size_t{256}, size_t{1024}, size_t{8192},
                       size_t{65536}, w.rows.size()}) {
    double mrows = BestMrows(w.rows.size(), reps, [&] {
      UnbiasedSpaceSaving s(m, 2);
      Span<const uint64_t> all(w.rows);
      for (size_t pos = 0; pos < all.size(); pos += batch) {
        s.UpdateBatch(all.subspan(pos, batch));
      }
    });
    std::printf("%-10zu %12.1f\n", batch, mrows);
    if (sink.enabled()) {
      sink.BeginRecord("batch_size");
      sink.Add("workload", w.name);
      sink.Add("m", static_cast<int64_t>(m));
      sink.Add("batch_size", static_cast<int64_t>(batch));
      sink.Add("mrows", mrows);
    }
  }
}

void ShardScalingSweep(const Workload& w, size_t shard_capacity, int reps,
                       bench::JsonSink& sink) {
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf(
      "\n-- shard_scaling: ShardedSketch ingest (%s, %u hardware threads;\n"
      "   scaling is bounded by the hardware thread count) --\n",
      w.name, hw);
  std::printf("%-8s %12s %10s\n", "shards", "Mrows/s", "vs 1shard");
  double base = 0;
  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    double mrows = BestMrows(w.rows.size(), reps, [&] {
      ShardedSketchOptions opt;
      opt.num_shards = shards;
      opt.shard_capacity = shard_capacity;
      opt.queue_capacity = 1 << 16;
      opt.batch_size = 4096;
      opt.seed = 3;
      ShardedSpaceSaving sharded(opt);
      Span<const uint64_t> all(w.rows);
      constexpr size_t kIngest = 1 << 15;
      for (size_t pos = 0; pos < all.size(); pos += kIngest) {
        sharded.Ingest(all.subspan(pos, kIngest));
      }
      sharded.Flush();
    });
    if (shards == 1) base = mrows;
    std::printf("%-8zu %12.1f %9.2fx\n", shards, mrows, mrows / base);
    if (sink.enabled()) {
      sink.BeginRecord("shard_scaling");
      sink.Add("workload", w.name);
      sink.Add("shards", static_cast<int64_t>(shards));
      sink.Add("shard_capacity", static_cast<int64_t>(shard_capacity));
      sink.Add("mrows", mrows);
      sink.Add("scaling_vs_1shard", mrows / base);
      sink.Add("hardware_concurrency", static_cast<int64_t>(hw));
    }
  }
}

void MicroBenches(const Workload& w, int reps, bench::JsonSink& sink) {
  std::printf("\n-- micro: per-row update cost of every sketch --\n");
  std::printf("%-24s %-8s %12s\n", "sketch", "m", "Mrows/s");
  auto report = [&](const char* name, size_t m, double mrows) {
    std::printf("%-24s %-8zu %12.1f\n", name, m, mrows);
    if (sink.enabled()) {
      sink.BeginRecord("micro");
      sink.Add("name", name);
      sink.Add("m", static_cast<int64_t>(m));
      sink.Add("mrows", mrows);
    }
  };
  const std::vector<uint64_t>& rows = w.rows;
  for (size_t m : {size_t{100}, size_t{1000}, size_t{10000}}) {
    report("unbiased_update", m, BestMrows(rows.size(), reps, [&] {
             UnbiasedSpaceSaving s(m, 2);
             for (uint64_t x : rows) s.Update(x);
           }));
  }
  report("deterministic_update", 1000, BestMrows(rows.size(), reps, [&] {
           DeterministicSpaceSaving s(1000, 3);
           for (uint64_t x : rows) s.Update(x);
         }));
  report("misra_gries_update", 1000, BestMrows(rows.size(), reps, [&] {
           MisraGries s(1000);
           for (uint64_t x : rows) s.Update(x);
         }));
  report("weighted_update", 1000, BestMrows(rows.size(), reps, [&] {
           WeightedSpaceSaving s(1000, 4);
           for (uint64_t x : rows) s.Update(x, 1.0);
         }));
  report("weighted_update_batch", 1000, BestMrows(rows.size(), reps, [&] {
           WeightedSpaceSaving s(1000, 4);
           s.UpdateBatch(rows, 1.0);
         }));
  report("sample_and_hold_update", 1000, BestMrows(rows.size(), reps, [&] {
           AdaptiveSampleAndHold s(1000, 5);
           for (uint64_t x : rows) s.Update(x);
         }));
  report("bottom_k_update", 1000, BestMrows(rows.size(), reps, [&] {
           BottomKSampler s(1000, 6);
           for (uint64_t x : rows) s.Update(x);
         }));
  report("count_min_update", 1024, BestMrows(rows.size(), reps, [&] {
           CountMin s(1024, 4, 7);
           for (uint64_t x : rows) s.Update(x);
         }));

  std::printf("\n-- micro: merge and query cost --\n");
  for (size_t m : {size_t{1000}, size_t{10000}}) {
    UnbiasedSpaceSaving a(m, 8), b(m, 9);
    const size_t half = rows.size() / 2;
    a.UpdateBatch(Span<const uint64_t>(rows.data(), half));
    b.UpdateBatch(Span<const uint64_t>(rows.data() + half, half));
    const int merges = 20;
    uint64_t seed = 10;
    auto t0 = Clock::now();
    for (int i = 0; i < merges; ++i) {
      UnbiasedSpaceSaving merged = Merge(a, b, m, seed++);
      if (merged.TotalCount() < 0) std::abort();  // keep the work alive
    }
    double ms = Seconds(t0) * 1e3 / merges;
    std::printf("%-24s %-8zu %10.2f ms\n", "unbiased_merge", m, ms);
    if (sink.enabled()) {
      sink.BeginRecord("micro");
      sink.Add("name", "unbiased_merge_ms");
      sink.Add("m", static_cast<int64_t>(m));
      sink.Add("ms", ms);
    }

    const int queries = 200;
    t0 = Clock::now();
    double acc = 0;
    for (int i = 0; i < queries; ++i) {
      acc += EstimateSubsetSum(a, [](uint64_t item) {
               return item % 3 == 0;
             }).estimate;
    }
    double us = Seconds(t0) * 1e6 / queries;
    std::printf("%-24s %-8zu %10.2f us  (acc %.0f)\n", "subset_sum_query", m,
                us, acc);
    if (sink.enabled()) {
      sink.BeginRecord("micro");
      sink.Add("name", "subset_sum_query_us");
      sink.Add("m", static_cast<int64_t>(m));
      sink.Add("us", us);
    }
  }
}

// --smoke body: proves the ingest hot path end to end on a small stream.
// UpdateBatch documents bit-for-bit identity with per-row Update; m is
// chosen to cover both batch bodies (plain below the pipelining
// threshold, software-pipelined above it). Returns the failure count.
int SmokeCheck(const Workload& w) {
  int failures = 0;
  // 65536 bins is the smallest sketch that takes the pipelined
  // UpdateBatch body; 4096 exercises the plain loop.
  for (size_t m : {size_t{4096}, size_t{65536}}) {
    UnbiasedSpaceSaving per_row(m, 2);
    for (uint64_t x : w.rows) per_row.Update(x);

    UnbiasedSpaceSaving batched(m, 2);
    auto t0 = Clock::now();
    batched.UpdateBatch(w.rows);
    const double mrows =
        static_cast<double>(w.rows.size()) / Seconds(t0) / 1e6;

    const bool identical = per_row.Entries() == batched.Entries() &&
                           per_row.TotalCount() == batched.TotalCount();
    const bool sane_rate = mrows > 0.0;
    std::printf("smoke m=%-8zu batch %8.1f Mrows/s  bit-identity %s\n", m,
                mrows, identical ? "OK" : "FAILED");
    if (!identical) ++failures;
    if (!sane_rate) {
      std::printf("smoke m=%zu: implausible rate %f Mrows/s\n", m, mrows);
      ++failures;
    }
  }
  std::printf("smoke: %s\n", failures == 0 ? "OK" : "FAILED");
  return failures;
}

}  // namespace
}  // namespace dsketch

int main(int argc, char** argv) {
  using namespace dsketch;
  bench::Banner("ingestion throughput: batched + sharded pipeline",
                "paper §6.7 cost claims; ROADMAP throughput/sharding items");
  const bool smoke = bench::FlagSet(argc, argv, "smoke");
  const int64_t rows =
      bench::FlagInt(argc, argv, "rows", smoke ? 1000000 : 8000000);
  const int reps = static_cast<int>(bench::FlagInt(argc, argv, "reps", 2));
  const bool full = bench::FlagInt(argc, argv, "full", 1) != 0;
  bench::JsonSink sink(argc, argv, "throughput");

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("ingest config: alloc=%s (mmap %savailable), probe=%s, "
              "%u hardware threads\n",
              AllocModeName(GlobalAllocMode()),
              MmapAllocSupported() ? "" : "un", FlatMapProbeIsa(), hw);
  if (sink.enabled()) {
    sink.BeginRecord("params");
    sink.Add("rows", rows);
    sink.Add("reps", static_cast<int64_t>(reps));
    sink.Add("hardware_concurrency", static_cast<int64_t>(hw));
    sink.Add("alloc_mode", AllocModeName(GlobalAllocMode()));
    sink.Add("mmap_supported",
             static_cast<int64_t>(MmapAllocSupported() ? 1 : 0));
    sink.Add("probe_isa", FlatMapProbeIsa());
    sink.Add("compiler", __VERSION__);
  }

  std::printf("generating streams (%lld rows each)...\n",
              static_cast<long long>(rows));
  std::vector<Workload> workloads;
  {
    auto counts = ScaleCountsToTotal(
        ZipfCounts(static_cast<size_t>(rows) / 2, 1.05, 1000000), rows);
    Rng rng(1);
    workloads.push_back({"zipf", PermutedStream(counts, rng)});
  }
  if (smoke) {
    const int failures = SmokeCheck(workloads[0]);
    sink.Flush();
    return failures == 0 ? 0 : 1;
  }
  {
    auto counts = ScaleCountsToTotal(
        WeibullCounts(static_cast<size_t>(rows) / 4, 5e5, 0.3), rows);
    Rng rng(1);
    workloads.push_back({"weibull", PermutedStream(counts, rng)});
  }

  std::vector<size_t> sizes = {10000, 100000, 1000000};
  if (full) sizes.push_back(4000000);

  RowVsBatchSweep(workloads, sizes, reps, sink);
  BatchSizeSweep(workloads[0], full ? 4000000 : 1000000, reps, sink);
  ShardScalingSweep(workloads[0], 262144, reps, sink);
  MicroBenches(workloads[1], reps, sink);

  sink.Flush();
  return 0;
}
