// Figure 10: %RRMSE per epoch on the pathological sorted stream,
// Deterministic vs Unbiased Space Saving — plus the time-aware variants
// the ROADMAP's "More workloads" item asks for, measured end-to-end on
// the same epoch workload:
//
//   * decayed  — DecayedSpaceSaving with per-epoch timestamps; per-epoch
//     decayed sums vs the analytically decayed truth.
//   * sliding window — the first-class WindowedSketch epoch ring
//     (src/window): window queries merge the last W ring slots with the
//     unbiased reduction; the newest epoch's sum is estimated from each
//     window merge. The pre-subsystem hand-merged construction
//     (per-epoch sketches + MergeAll) runs alongside as a cross-check —
//     with the ring's seed schedule the two are estimate-identical, and
//     the bench aborts loudly if they ever diverge.
//   * bursty / all-distinct — the remaining §6.3 pathological arrival
//     patterns: periodic bursts of one hot item separated by runs of
//     fresh distinct items, and the pure all-distinct stream. Scored as
//     %RRMSE of the burst item's count, the fresh-item mass, and a 10%
//     distinct-item subset, USS vs DSS.
//
// The paper's headline (Fig. 10): the deterministic sketch estimates 0
// for the first nine epochs and the full total for the last, giving
// ~100% error everywhere (50x USS on the late epochs); Unbiased Space
// Saving degrades only on the tiny first epochs where overestimation is
// possible. Records baselines with --json=PATH (record_baselines.sh).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/decayed_space_saving.h"
#include "core/deterministic_space_saving.h"
#include "core/merge.h"
#include "core/subset_sum.h"
#include "core/unbiased_space_saving.h"
#include "epoch_common.h"
#include "stats/summary.h"
#include "stream/generators.h"
#include "util/logging.h"
#include "util/span.h"
#include "window/windowed_sketch.h"

namespace dsketch {
namespace {

// Sum of DSS entries matching `pred` (the deterministic sketch has no
// estimator object; its subset estimate is the plain entry sum).
template <typename Pred>
double DssSubsetSum(const DeterministicSpaceSaving& dss, Pred pred) {
  double sum = 0.0;
  for (const SketchEntry& e : dss.Entries()) {
    if (pred(e.item)) sum += static_cast<double>(e.count);
  }
  return sum;
}

// §6.3 bursty + all-distinct patterns: USS vs DSS %RRMSE on the subsets
// that characterize each stream.
void RunPathological(int64_t m, int64_t trials, int64_t burst_length,
                     int64_t quiet_length, int64_t periods,
                     int64_t distinct_rows, bench::JsonSink& json) {
  // Bursty: item 0 bursts `burst_length` rows per period, separated by
  // `quiet_length` fresh distinct items (ids from 1 on).
  const std::vector<uint64_t> bursty =
      BurstyStream(/*burst_item=*/0, burst_length, quiet_length, periods,
                   /*fresh_start_id=*/1);
  const double burst_truth =
      static_cast<double>(burst_length) * static_cast<double>(periods);
  // Half the fresh items (even ids): a proper subset, so neither sketch
  // gets it for free from total preservation (the full fresh mass is the
  // burst item's complement and would be exact by construction).
  const int64_t n_fresh = quiet_length * periods;
  const double fresh_truth = static_cast<double>(n_fresh / 2);
  // All-distinct: every row a fresh item; scored on the 10% subset
  // item % 10 == 0.
  const std::vector<uint64_t> distinct = DistinctStream(distinct_rows);
  const double distinct_truth = static_cast<double>((distinct_rows + 9) / 10);

  ErrorAccumulator uss_burst, dss_burst, uss_fresh, dss_fresh;
  ErrorAccumulator uss_distinct, dss_distinct;
  auto is_burst = [](uint64_t item) { return item == 0; };
  auto is_fresh = [](uint64_t item) { return item != 0 && item % 2 == 0; };
  auto in_tenth = [](uint64_t item) { return item % 10 == 0; };
  for (int64_t t = 0; t < trials; ++t) {
    UnbiasedSpaceSaving uss(static_cast<size_t>(m),
                            static_cast<uint64_t>(220000 + t));
    DeterministicSpaceSaving dss(static_cast<size_t>(m),
                                 static_cast<uint64_t>(230000 + t));
    uss.UpdateBatch(bursty);
    dss.UpdateBatch(bursty);
    uss_burst.Add(EstimateSubsetSum(uss, is_burst).estimate, burst_truth);
    dss_burst.Add(DssSubsetSum(dss, is_burst), burst_truth);
    uss_fresh.Add(EstimateSubsetSum(uss, is_fresh).estimate, fresh_truth);
    dss_fresh.Add(DssSubsetSum(dss, is_fresh), fresh_truth);

    UnbiasedSpaceSaving uss_d(static_cast<size_t>(m),
                              static_cast<uint64_t>(240000 + t));
    DeterministicSpaceSaving dss_d(static_cast<size_t>(m),
                                   static_cast<uint64_t>(250000 + t));
    uss_d.UpdateBatch(distinct);
    dss_d.UpdateBatch(distinct);
    uss_distinct.Add(EstimateSubsetSum(uss_d, in_tenth).estimate,
                     distinct_truth);
    dss_distinct.Add(DssSubsetSum(dss_d, in_tenth), distinct_truth);
  }

  struct RowOut {
    const char* workload;
    const char* subset;
    double truth;
    double uss;
    double dss;
  };
  const RowOut rows[] = {
      {"bursty", "burst_item", burst_truth, 100.0 * uss_burst.rrmse(),
       100.0 * dss_burst.rrmse()},
      {"bursty", "fresh_half", fresh_truth, 100.0 * uss_fresh.rrmse(),
       100.0 * dss_fresh.rrmse()},
      {"all_distinct", "ten_pct", distinct_truth,
       100.0 * uss_distinct.rrmse(), 100.0 * dss_distinct.rrmse()},
  };
  std::printf("\n%-13s %-12s %12s %14s %14s\n", "workload", "subset",
              "true_count", "uss_pct_rrmse", "dss_pct_rrmse");
  for (const RowOut& r : rows) {
    std::printf("%-13s %-12s %12.0f %14.2f %14.2f\n", r.workload, r.subset,
                r.truth, r.uss, r.dss);
    if (json.enabled()) {
      json.BeginRecord("pathological_rrmse");
      json.Add("workload", std::string(r.workload));
      json.Add("subset", std::string(r.subset));
      json.Add("true_count", r.truth);
      json.Add("uss_pct_rrmse", r.uss);
      json.Add("dss_pct_rrmse", r.dss);
    }
  }
}

void Run(int argc, char** argv) {
  const int64_t items = bench::FlagInt(argc, argv, "items", 20000);
  const int64_t total = bench::FlagInt(argc, argv, "rows", 2000000);
  const int64_t m = bench::FlagInt(argc, argv, "bins", 1000);
  const int64_t trials = bench::FlagInt(argc, argv, "trials", 40);
  const int epochs = static_cast<int>(bench::FlagInt(argc, argv, "epochs", 10));
  const double half_life = bench::FlagDouble(argc, argv, "half_life", 3.0);
  const int window = static_cast<int>(bench::FlagInt(argc, argv, "window", 3));
  const int64_t burst_length = bench::FlagInt(argc, argv, "burst_length", 2000);
  const int64_t quiet_length = bench::FlagInt(argc, argv, "quiet_length", 2000);
  const int64_t periods = bench::FlagInt(argc, argv, "periods", 10);
  const int64_t distinct_rows =
      bench::FlagInt(argc, argv, "distinct_rows", 100000);
  bench::JsonSink json(argc, argv, "fig10_epoch_rrmse");

  bench::Banner(
      "Figure 10: %RRMSE per epoch — DSS vs USS, decayed, sliding window",
      "paper Fig. 10 + §6.3-style epoch workloads (decayed / windowed)");

  bench::EpochSetup setup = bench::MakeEpochSetup(items, total, epochs);
  const size_t n_epochs = static_cast<size_t>(epochs);

  // Epoch boundaries in the sorted stream (items ascend, so each epoch
  // is one contiguous run of rows).
  std::vector<size_t> epoch_begin(n_epochs + 1, setup.rows.size());
  epoch_begin[0] = 0;
  for (size_t i = 0, e = 0; i < setup.rows.size(); ++i) {
    size_t row_epoch = static_cast<size_t>(bench::EpochOf(setup, setup.rows[i]));
    while (e < row_epoch) epoch_begin[++e] = i;
  }

  // Decayed truth as of query time T = last epoch: each epoch's rows
  // carry timestamp = epoch index and decay by 2^-(T-e)/half_life.
  const double query_time = static_cast<double>(epochs - 1);
  std::vector<double> decayed_truth(n_epochs);
  for (size_t e = 0; e < n_epochs; ++e) {
    decayed_truth[e] =
        setup.epoch_truth[e] *
        std::exp2(-(query_time - static_cast<double>(e)) / half_life);
  }

  std::vector<ErrorAccumulator> uss_err(n_epochs), dss_err(n_epochs);
  std::vector<ErrorAccumulator> decayed_err(n_epochs), window_err(n_epochs);
  int64_t window_cross_checks = 0;
  for (int64_t t = 0; t < trials; ++t) {
    UnbiasedSpaceSaving uss(static_cast<size_t>(m),
                            static_cast<uint64_t>(170000 + t));
    DeterministicSpaceSaving dss(static_cast<size_t>(m),
                                 static_cast<uint64_t>(180000 + t));
    DecayedSpaceSaving decayed(static_cast<size_t>(m), half_life,
                               static_cast<uint64_t>(190000 + t));
    // The first-class epoch ring, seeded so that epoch e's sketch gets
    // seed 200000 + t*100 + e — the exact per-epoch seeds the
    // hand-merged construction below uses, making the two paths
    // estimate-identical.
    WindowedSketchOptions wopt;
    wopt.window_epochs = static_cast<size_t>(window);
    wopt.epoch_capacity = static_cast<size_t>(m);
    wopt.merged_capacity = static_cast<size_t>(m);
    wopt.seed = static_cast<uint64_t>(200000 + t * 100);
    WindowedSpaceSaving windowed(wopt);
    // The pre-subsystem cross-check path: one mergeable sketch per
    // epoch, windows built by hand with MergeAll.
    std::vector<UnbiasedSpaceSaving> epoch_sketches;
    epoch_sketches.reserve(n_epochs);
    for (size_t e = 0; e < n_epochs; ++e) {
      epoch_sketches.emplace_back(
          static_cast<size_t>(m),
          static_cast<uint64_t>(200000 + t * 100 + static_cast<int64_t>(e)));
    }

    for (uint64_t item : setup.rows) {
      uss.Update(item);
      dss.Update(item);
    }
    for (size_t e = 0; e < n_epochs; ++e) {
      Span<const uint64_t> chunk(setup.rows.data() + epoch_begin[e],
                                 epoch_begin[e + 1] - epoch_begin[e]);
      decayed.UpdateBatch(chunk, static_cast<double>(e));
      epoch_sketches[e].UpdateBatch(chunk);
    }

    std::vector<double> uss_est(n_epochs, 0.0), dss_est(n_epochs, 0.0);
    std::vector<double> decayed_est(n_epochs, 0.0);
    for (const SketchEntry& e : uss.Entries()) {
      uss_est[static_cast<size_t>(bench::EpochOf(setup, e.item))] +=
          static_cast<double>(e.count);
    }
    for (const SketchEntry& e : dss.Entries()) {
      dss_est[static_cast<size_t>(bench::EpochOf(setup, e.item))] +=
          static_cast<double>(e.count);
    }
    for (const WeightedEntry& e : decayed.DecayedEntries(query_time)) {
      decayed_est[static_cast<size_t>(bench::EpochOf(setup, e.item))] +=
          e.weight;
    }
    for (size_t e = 0; e < n_epochs; ++e) {
      uss_err[e].Add(uss_est[e], setup.epoch_truth[e]);
      dss_err[e].Add(dss_est[e], setup.epoch_truth[e]);
      decayed_err[e].Add(decayed_est[e], decayed_truth[e]);
    }

    // Sliding window ending at each epoch e, answered by the epoch
    // ring: feed the epoch's rows, query the last-W window, advance.
    // The hand-merged MergeAll construction runs beside it with the
    // same merge seed; the two must agree to the last bin.
    for (size_t e = 0; e < n_epochs; ++e) {
      Span<const uint64_t> chunk(setup.rows.data() + epoch_begin[e],
                                 epoch_begin[e + 1] - epoch_begin[e]);
      windowed.UpdateBatch(chunk);
      const uint64_t merge_seed =
          static_cast<uint64_t>(210000 + t * 100 + static_cast<int64_t>(e));
      UnbiasedSpaceSaving merged = windowed.QueryWindow(
          static_cast<size_t>(window), static_cast<size_t>(m), merge_seed);

      std::vector<const UnbiasedSpaceSaving*> win;
      size_t lo = e + 1 >= static_cast<size_t>(window)
                      ? e + 1 - static_cast<size_t>(window)
                      : 0;
      for (size_t w = lo; w <= e; ++w) win.push_back(&epoch_sketches[w]);
      UnbiasedSpaceSaving hand_merged =
          MergeAll(win, static_cast<size_t>(m), merge_seed);

      double newest = 0.0;
      for (const SketchEntry& entry : merged.Entries()) {
        if (static_cast<size_t>(bench::EpochOf(setup, entry.item)) == e) {
          newest += static_cast<double>(entry.count);
        }
      }
      double hand_newest = 0.0;
      for (const SketchEntry& entry : hand_merged.Entries()) {
        if (static_cast<size_t>(bench::EpochOf(setup, entry.item)) == e) {
          hand_newest += static_cast<double>(entry.count);
        }
      }
      DSKETCH_CHECK(merged.TotalCount() == hand_merged.TotalCount());
      DSKETCH_CHECK(newest == hand_newest);
      ++window_cross_checks;

      window_err[e].Add(newest, setup.epoch_truth[e]);
      if (e + 1 < n_epochs) windowed.Advance();
    }
  }

  if (json.enabled()) {
    json.BeginRecord("params");
    json.Add("items", items);
    json.Add("rows", total);
    json.Add("bins", m);
    json.Add("trials", trials);
    json.Add("epochs", static_cast<int64_t>(epochs));
    json.Add("half_life", half_life);
    json.Add("window", static_cast<int64_t>(window));
    json.Add("window_cross_checks", window_cross_checks);
    json.Add("burst_length", burst_length);
    json.Add("quiet_length", quiet_length);
    json.Add("periods", periods);
    json.Add("distinct_rows", distinct_rows);
  }

  std::printf("\n%-7s %14s %14s %14s %14s %14s\n", "epoch", "true_count",
              "uss_pct_rrmse", "dss_pct_rrmse", "decayed_rrmse",
              "window_rrmse");
  for (size_t e = 0; e < n_epochs; ++e) {
    double u = 100.0 * uss_err[e].rrmse();
    double d = 100.0 * dss_err[e].rrmse();
    double dec = 100.0 * decayed_err[e].rrmse();
    double win = 100.0 * window_err[e].rrmse();
    std::printf("%-7zu %14.0f %14.2f %14.2f %14.2f %14.2f\n", e + 1,
                setup.epoch_truth[e], u, d, dec, win);
    if (json.enabled()) {
      json.BeginRecord("epoch_rrmse");
      json.Add("epoch", static_cast<int64_t>(e + 1));
      json.Add("true_count", setup.epoch_truth[e]);
      json.Add("uss_pct_rrmse", u);
      json.Add("dss_pct_rrmse", d);
      json.BeginRecord("decayed_rrmse");
      json.Add("epoch", static_cast<int64_t>(e + 1));
      json.Add("true_decayed", decayed_truth[e]);
      json.Add("pct_rrmse", dec);
      json.BeginRecord("window_rrmse");
      json.Add("window_end", static_cast<int64_t>(e + 1));
      json.Add("true_count", setup.epoch_truth[e]);
      json.Add("pct_rrmse", win);
    }
  }
  RunPathological(m, trials, burst_length, quiet_length, periods,
                  distinct_rows, json);

  std::printf(
      "\n(%lld WindowedSketch window queries cross-checked exactly against\n"
      " the hand-merged per-epoch construction)\n",
      static_cast<long long>(window_cross_checks));
  std::printf(
      "\n(paper: DSS ~100%% error on epochs 1-9 and ~50x USS on 9-10;\n"
      " USS only loses on epochs worth <0.002%% of the total. The decayed\n"
      " sketch is scored against the analytically decayed truth; the\n"
      " window merge is scored on the newest epoch of each %d-epoch\n"
      " window, answered by the src/window epoch ring.\n"
      " Bursty/all-distinct are the remaining §6.3 pathological\n"
      " patterns: USS keeps the hot burst item and stays unbiased on the\n"
      " fresh-item mass, while the all-distinct stream is worst-case for\n"
      " both — every bin holds count 1 and subset estimates ride on the\n"
      " sampled labels alone)\n",
      window);
}

}  // namespace
}  // namespace dsketch

int main(int argc, char** argv) {
  dsketch::Run(argc, argv);
  return 0;
}
