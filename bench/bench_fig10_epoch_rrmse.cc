// Figure 10: %RRMSE per epoch on the pathological sorted stream,
// Deterministic vs Unbiased Space Saving — plus the time-aware variants
// the ROADMAP's "More workloads" item asks for, measured end-to-end on
// the same epoch workload:
//
//   * decayed  — DecayedSpaceSaving with per-epoch timestamps; per-epoch
//     decayed sums vs the analytically decayed truth.
//   * sliding window — one mergeable per-epoch sketch, window queries
//     answered by the unbiased merge of the last W epoch sketches (the
//     classic mergeable-sketch window construction); the newest epoch's
//     sum is estimated from each window merge.
//
// The paper's headline (Fig. 10): the deterministic sketch estimates 0
// for the first nine epochs and the full total for the last, giving
// ~100% error everywhere (50x USS on the late epochs); Unbiased Space
// Saving degrades only on the tiny first epochs where overestimation is
// possible. Records baselines with --json=PATH (record_baselines.sh).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/decayed_space_saving.h"
#include "core/deterministic_space_saving.h"
#include "core/merge.h"
#include "core/unbiased_space_saving.h"
#include "epoch_common.h"
#include "stats/summary.h"
#include "util/span.h"

namespace dsketch {
namespace {

void Run(int argc, char** argv) {
  const int64_t items = bench::FlagInt(argc, argv, "items", 20000);
  const int64_t total = bench::FlagInt(argc, argv, "rows", 2000000);
  const int64_t m = bench::FlagInt(argc, argv, "bins", 1000);
  const int64_t trials = bench::FlagInt(argc, argv, "trials", 40);
  const int epochs = static_cast<int>(bench::FlagInt(argc, argv, "epochs", 10));
  const double half_life = bench::FlagDouble(argc, argv, "half_life", 3.0);
  const int window = static_cast<int>(bench::FlagInt(argc, argv, "window", 3));
  bench::JsonSink json(argc, argv, "fig10_epoch_rrmse");

  bench::Banner(
      "Figure 10: %RRMSE per epoch — DSS vs USS, decayed, sliding window",
      "paper Fig. 10 + §6.3-style epoch workloads (decayed / windowed)");

  bench::EpochSetup setup = bench::MakeEpochSetup(items, total, epochs);
  const size_t n_epochs = static_cast<size_t>(epochs);

  // Epoch boundaries in the sorted stream (items ascend, so each epoch
  // is one contiguous run of rows).
  std::vector<size_t> epoch_begin(n_epochs + 1, setup.rows.size());
  epoch_begin[0] = 0;
  for (size_t i = 0, e = 0; i < setup.rows.size(); ++i) {
    size_t row_epoch = static_cast<size_t>(bench::EpochOf(setup, setup.rows[i]));
    while (e < row_epoch) epoch_begin[++e] = i;
  }

  // Decayed truth as of query time T = last epoch: each epoch's rows
  // carry timestamp = epoch index and decay by 2^-(T-e)/half_life.
  const double query_time = static_cast<double>(epochs - 1);
  std::vector<double> decayed_truth(n_epochs);
  for (size_t e = 0; e < n_epochs; ++e) {
    decayed_truth[e] =
        setup.epoch_truth[e] *
        std::exp2(-(query_time - static_cast<double>(e)) / half_life);
  }

  std::vector<ErrorAccumulator> uss_err(n_epochs), dss_err(n_epochs);
  std::vector<ErrorAccumulator> decayed_err(n_epochs), window_err(n_epochs);
  for (int64_t t = 0; t < trials; ++t) {
    UnbiasedSpaceSaving uss(static_cast<size_t>(m),
                            static_cast<uint64_t>(170000 + t));
    DeterministicSpaceSaving dss(static_cast<size_t>(m),
                                 static_cast<uint64_t>(180000 + t));
    DecayedSpaceSaving decayed(static_cast<size_t>(m), half_life,
                               static_cast<uint64_t>(190000 + t));
    std::vector<UnbiasedSpaceSaving> epoch_sketches;
    epoch_sketches.reserve(n_epochs);
    for (size_t e = 0; e < n_epochs; ++e) {
      epoch_sketches.emplace_back(
          static_cast<size_t>(m),
          static_cast<uint64_t>(200000 + t * 100 + static_cast<int64_t>(e)));
    }

    for (uint64_t item : setup.rows) {
      uss.Update(item);
      dss.Update(item);
    }
    for (size_t e = 0; e < n_epochs; ++e) {
      Span<const uint64_t> chunk(setup.rows.data() + epoch_begin[e],
                                 epoch_begin[e + 1] - epoch_begin[e]);
      decayed.UpdateBatch(chunk, static_cast<double>(e));
      epoch_sketches[e].UpdateBatch(chunk);
    }

    std::vector<double> uss_est(n_epochs, 0.0), dss_est(n_epochs, 0.0);
    std::vector<double> decayed_est(n_epochs, 0.0);
    for (const SketchEntry& e : uss.Entries()) {
      uss_est[static_cast<size_t>(bench::EpochOf(setup, e.item))] +=
          static_cast<double>(e.count);
    }
    for (const SketchEntry& e : dss.Entries()) {
      dss_est[static_cast<size_t>(bench::EpochOf(setup, e.item))] +=
          static_cast<double>(e.count);
    }
    for (const WeightedEntry& e : decayed.DecayedEntries(query_time)) {
      decayed_est[static_cast<size_t>(bench::EpochOf(setup, e.item))] +=
          e.weight;
    }
    for (size_t e = 0; e < n_epochs; ++e) {
      uss_err[e].Add(uss_est[e], setup.epoch_truth[e]);
      dss_err[e].Add(dss_est[e], setup.epoch_truth[e]);
      decayed_err[e].Add(decayed_est[e], decayed_truth[e]);
    }

    // Sliding window ending at each epoch e: merge the last W per-epoch
    // sketches and estimate the newest epoch's sum from the merge.
    for (size_t e = 0; e < n_epochs; ++e) {
      std::vector<const UnbiasedSpaceSaving*> win;
      size_t lo = e + 1 >= static_cast<size_t>(window)
                      ? e + 1 - static_cast<size_t>(window)
                      : 0;
      for (size_t w = lo; w <= e; ++w) win.push_back(&epoch_sketches[w]);
      UnbiasedSpaceSaving merged =
          MergeAll(win, static_cast<size_t>(m),
                   static_cast<uint64_t>(210000 + t * 100 +
                                         static_cast<int64_t>(e)));
      double newest = 0.0;
      for (const SketchEntry& entry : merged.Entries()) {
        if (static_cast<size_t>(bench::EpochOf(setup, entry.item)) == e) {
          newest += static_cast<double>(entry.count);
        }
      }
      window_err[e].Add(newest, setup.epoch_truth[e]);
    }
  }

  if (json.enabled()) {
    json.BeginRecord("params");
    json.Add("items", items);
    json.Add("rows", total);
    json.Add("bins", m);
    json.Add("trials", trials);
    json.Add("epochs", static_cast<int64_t>(epochs));
    json.Add("half_life", half_life);
    json.Add("window", static_cast<int64_t>(window));
  }

  std::printf("\n%-7s %14s %14s %14s %14s %14s\n", "epoch", "true_count",
              "uss_pct_rrmse", "dss_pct_rrmse", "decayed_rrmse",
              "window_rrmse");
  for (size_t e = 0; e < n_epochs; ++e) {
    double u = 100.0 * uss_err[e].rrmse();
    double d = 100.0 * dss_err[e].rrmse();
    double dec = 100.0 * decayed_err[e].rrmse();
    double win = 100.0 * window_err[e].rrmse();
    std::printf("%-7zu %14.0f %14.2f %14.2f %14.2f %14.2f\n", e + 1,
                setup.epoch_truth[e], u, d, dec, win);
    if (json.enabled()) {
      json.BeginRecord("epoch_rrmse");
      json.Add("epoch", static_cast<int64_t>(e + 1));
      json.Add("true_count", setup.epoch_truth[e]);
      json.Add("uss_pct_rrmse", u);
      json.Add("dss_pct_rrmse", d);
      json.BeginRecord("decayed_rrmse");
      json.Add("epoch", static_cast<int64_t>(e + 1));
      json.Add("true_decayed", decayed_truth[e]);
      json.Add("pct_rrmse", dec);
      json.BeginRecord("window_rrmse");
      json.Add("window_end", static_cast<int64_t>(e + 1));
      json.Add("true_count", setup.epoch_truth[e]);
      json.Add("pct_rrmse", win);
    }
  }
  std::printf(
      "\n(paper: DSS ~100%% error on epochs 1-9 and ~50x USS on 9-10;\n"
      " USS only loses on epochs worth <0.002%% of the total. The decayed\n"
      " sketch is scored against the analytically decayed truth; the\n"
      " window merge is scored on the newest epoch of each %d-epoch\n"
      " window)\n",
      window);
}

}  // namespace
}  // namespace dsketch

int main(int argc, char** argv) {
  dsketch::Run(argc, argv);
  return 0;
}
