// Figure 10: %RRMSE per epoch on the pathological sorted stream,
// Deterministic vs Unbiased Space Saving. The deterministic sketch
// estimates 0 for the first nine epochs and the full total for the last,
// giving ~100% error everywhere (50x USS on the late epochs); Unbiased
// Space Saving degrades only on the tiny first epochs where overestimation
// is possible.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/deterministic_space_saving.h"
#include "core/unbiased_space_saving.h"
#include "epoch_common.h"
#include "stats/summary.h"

namespace dsketch {
namespace {

void Run(int argc, char** argv) {
  const int64_t items = bench::FlagInt(argc, argv, "items", 20000);
  const int64_t total = bench::FlagInt(argc, argv, "rows", 2000000);
  const int64_t m = bench::FlagInt(argc, argv, "bins", 1000);
  const int64_t trials = bench::FlagInt(argc, argv, "trials", 40);
  const int epochs = static_cast<int>(bench::FlagInt(argc, argv, "epochs", 10));

  bench::Banner("Figure 10: %RRMSE per epoch, Deterministic vs Unbiased",
                "paper Fig. 10 (DSS fails on every epoch; 50x worse on late)");

  bench::EpochSetup setup = bench::MakeEpochSetup(items, total, epochs);

  std::vector<ErrorAccumulator> uss_err(static_cast<size_t>(epochs));
  std::vector<ErrorAccumulator> dss_err(static_cast<size_t>(epochs));
  for (int64_t t = 0; t < trials; ++t) {
    UnbiasedSpaceSaving uss(static_cast<size_t>(m),
                            static_cast<uint64_t>(170000 + t));
    DeterministicSpaceSaving dss(static_cast<size_t>(m),
                                 static_cast<uint64_t>(180000 + t));
    for (uint64_t item : setup.rows) {
      uss.Update(item);
      dss.Update(item);
    }
    std::vector<double> uss_est(static_cast<size_t>(epochs), 0.0);
    std::vector<double> dss_est(static_cast<size_t>(epochs), 0.0);
    for (const SketchEntry& e : uss.Entries()) {
      uss_est[static_cast<size_t>(bench::EpochOf(setup, e.item))] +=
          static_cast<double>(e.count);
    }
    for (const SketchEntry& e : dss.Entries()) {
      dss_est[static_cast<size_t>(bench::EpochOf(setup, e.item))] +=
          static_cast<double>(e.count);
    }
    for (int e = 0; e < epochs; ++e) {
      size_t idx = static_cast<size_t>(e);
      uss_err[idx].Add(uss_est[idx], setup.epoch_truth[idx]);
      dss_err[idx].Add(dss_est[idx], setup.epoch_truth[idx]);
    }
  }

  std::printf("\n%-7s %14s %16s %16s %12s\n", "epoch", "true_count",
              "uss_pct_rrmse", "dss_pct_rrmse", "dss/uss");
  for (int e = 0; e < epochs; ++e) {
    size_t idx = static_cast<size_t>(e);
    double u = 100.0 * uss_err[idx].rrmse();
    double d = 100.0 * dss_err[idx].rrmse();
    std::printf("%-7d %14.0f %16.2f %16.2f %12.1f\n", e + 1,
                setup.epoch_truth[idx], u, d, u > 0 ? d / u : 0.0);
  }
  std::printf(
      "\n(paper: DSS ~100%% error on epochs 1-9 and ~50x USS on 9-10;\n"
      " USS only loses on epochs worth <0.002%% of the total)\n");
}

}  // namespace
}  // namespace dsketch

int main(int argc, char** argv) {
  dsketch::Run(argc, argv);
  return 0;
}
