// Ablation: the two unbiased merge reductions (DESIGN.md design choice).
//
//   pairwise  — repeated PPS collapse of the two smallest bins; preserves
//               the total exactly, keeps integer counts.
//   priority  — priority sampling over combined bins with max(c, tau)
//               estimates; real-valued, total preserved in expectation.
//
// Both are unbiased (Theorem 2); this bench quantifies the trade-offs the
// paper's Fig. 1 sketches: top-k label retention, tail mass placement,
// total preservation, and subset-sum error after the merge.

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bench_util.h"
#include "core/merge.h"
#include "core/unbiased_space_saving.h"
#include "stats/summary.h"
#include "stream/distributions.h"
#include "stream/generators.h"
#include "subset_workload.h"
#include "util/random.h"

namespace dsketch {
namespace {

void Run(int argc, char** argv) {
  const int64_t m = bench::FlagInt(argc, argv, "bins", 200);
  const int64_t items = bench::FlagInt(argc, argv, "items", 2000);
  const int64_t total = bench::FlagInt(argc, argv, "rows", 200000);
  const int64_t trials = bench::FlagInt(argc, argv, "trials", 200);

  bench::Banner("Ablation: pairwise-PPS merge vs priority-sampling merge",
                "DESIGN.md ablation (Theorem 2 reductions, Fig. 1 trade-off)");

  auto counts = ScaleCountsToTotal(
      WeibullCounts(static_cast<size_t>(items), 5e5, 0.3), total);
  double grand_total = static_cast<double>(TotalCount(counts));

  // True top 20 items by count (counts are ascending: the last 20).
  std::unordered_set<uint64_t> true_top;
  for (size_t i = counts.size() - 20; i < counts.size(); ++i) {
    true_top.insert(i);
  }
  auto subs = bench::DrawSubsets(counts, 50, 100, 0xAB1);

  Welford pairwise_top, priority_top;
  Welford pairwise_total_err, priority_total_err;
  std::vector<ErrorAccumulator> pw_sub(subs.size()), pr_sub(subs.size());

  for (int64_t t = 0; t < trials; ++t) {
    Rng rng(static_cast<uint64_t>(500000 + t));
    auto rows = PermutedStream(counts, rng);
    UnbiasedSpaceSaving a(static_cast<size_t>(m),
                          static_cast<uint64_t>(510000 + t));
    UnbiasedSpaceSaving b(static_cast<size_t>(m),
                          static_cast<uint64_t>(520000 + t));
    for (size_t i = 0; i < rows.size(); ++i) {
      (i % 2 == 0 ? a : b).Update(rows[i]);
    }
    auto combined = CombineEntries(a.Entries(), b.Entries());

    Rng reduce_rng(static_cast<uint64_t>(530000 + t));
    auto pairwise = ReducePairwise(combined, static_cast<size_t>(m),
                                   reduce_rng);
    auto priority = ReducePriority(combined, static_cast<size_t>(m),
                                   reduce_rng);

    // Top-k retention.
    int pw_kept = 0, pr_kept = 0;
    std::unordered_map<uint64_t, double> pw_map, pr_map;
    double pw_total = 0, pr_total = 0;
    for (const auto& e : pairwise) {
      pw_map[e.item] = static_cast<double>(e.count);
      pw_total += static_cast<double>(e.count);
      if (true_top.count(e.item)) ++pw_kept;
    }
    for (const auto& e : priority) {
      pr_map[e.item] = e.weight;
      pr_total += e.weight;
      if (true_top.count(e.item)) ++pr_kept;
    }
    pairwise_top.Add(pw_kept);
    priority_top.Add(pr_kept);
    pairwise_total_err.Add((pw_total - grand_total) / grand_total);
    priority_total_err.Add((pr_total - grand_total) / grand_total);

    for (size_t s = 0; s < subs.size(); ++s) {
      double pw_est = 0, pr_est = 0;
      for (uint64_t item : subs[s].items) {
        auto it = pw_map.find(item);
        if (it != pw_map.end()) pw_est += it->second;
        auto jt = pr_map.find(item);
        if (jt != pr_map.end()) pr_est += jt->second;
      }
      pw_sub[s].Add(pw_est, subs[s].truth);
      pr_sub[s].Add(pr_est, subs[s].truth);
    }
  }

  double pw_rrmse = 0, pr_rrmse = 0;
  for (size_t s = 0; s < subs.size(); ++s) {
    pw_rrmse += pw_sub[s].rrmse();
    pr_rrmse += pr_sub[s].rrmse();
  }
  pw_rrmse /= static_cast<double>(subs.size());
  pr_rrmse /= static_cast<double>(subs.size());

  std::printf("%-28s %14s %14s\n", "metric", "pairwise", "priority");
  std::printf("%-28s %14.2f %14.2f\n", "top20_labels_retained",
              pairwise_top.mean(), priority_top.mean());
  std::printf("%-28s %14.5f %14.5f\n", "total_rel_error_sd",
              pairwise_total_err.stddev(), priority_total_err.stddev());
  std::printf("%-28s %14.5f %14.5f\n", "mean_subset_rrmse", pw_rrmse,
              pr_rrmse);
  std::printf(
      "\n(expected: pairwise total error sd = 0 exactly; priority retains\n"
      " as many or slightly more top labels; subset errors comparable)\n");
}

}  // namespace
}  // namespace dsketch

int main(int argc, char** argv) {
  dsketch::Run(argc, argv);
  return 0;
}
