// Shared helpers for the figure benches: tiny --key=value flag parsing so
// every bench runs with fast defaults yet scales to paper-sized runs, plus
// common printing.

#ifndef DSKETCH_BENCH_BENCH_UTIL_H_
#define DSKETCH_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace dsketch {
namespace bench {

/// Returns the value of --name=... as int64, or `def` if absent.
inline int64_t FlagInt(int argc, char** argv, const char* name, int64_t def) {
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtoll(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return def;
}

/// Returns the value of --name=... as double, or `def` if absent.
inline double FlagDouble(int argc, char** argv, const char* name,
                         double def) {
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtod(argv[i] + prefix.size(), nullptr);
    }
  }
  return def;
}

/// Prints a header banner for a bench.
inline void Banner(const char* title, const char* paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("================================================================\n");
}

}  // namespace bench
}  // namespace dsketch

#endif  // DSKETCH_BENCH_BENCH_UTIL_H_
