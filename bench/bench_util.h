// Shared helpers for the figure benches: tiny --key=value flag parsing so
// every bench runs with fast defaults yet scales to paper-sized runs,
// common printing, and a --json=<path> sink that records results as
// machine-readable baselines (see bench/record_baselines.sh).

#ifndef DSKETCH_BENCH_BENCH_UTIL_H_
#define DSKETCH_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace dsketch {
namespace bench {

/// Returns the value of --name=... as int64, or `def` if absent.
inline int64_t FlagInt(int argc, char** argv, const char* name, int64_t def) {
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtoll(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return def;
}

/// True when the bare flag --name was passed (no value).
inline bool FlagSet(int argc, char** argv, const char* name) {
  std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

/// Returns the value of --name=... as double, or `def` if absent.
inline double FlagDouble(int argc, char** argv, const char* name,
                         double def) {
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtod(argv[i] + prefix.size(), nullptr);
    }
  }
  return def;
}

/// Returns the value of --name=... as a string, or `def` if absent.
inline std::string FlagString(int argc, char** argv, const char* name,
                              const char* def) {
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return def;
}

/// Collects bench records and, when --json=<path> was passed, writes them
/// as {"bench": ..., "records": [{...}, ...]} on Flush/destruction.
/// Values are numbers or strings; records are flat key/value objects with
/// a "section" discriminator so one file can hold several sweeps.
class JsonSink {
 public:
  JsonSink(int argc, char** argv, const char* bench_name)
      : bench_name_(bench_name), path_(FlagString(argc, argv, "json", "")) {}

  ~JsonSink() { Flush(); }

  /// True when a --json path was given (records are being collected).
  bool enabled() const { return !path_.empty(); }

  /// Starts a record in `section`.
  void BeginRecord(const std::string& section) {
    records_.emplace_back();
    Add("section", section);
  }

  /// Adds a string field to the current record.
  void Add(const std::string& key, const std::string& value) {
    records_.back().emplace_back(key, "\"" + value + "\"");
  }

  /// Adds a numeric field to the current record.
  void Add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    records_.back().emplace_back(key, buf);
  }

  /// Adds an integer field to the current record.
  void Add(const std::string& key, int64_t value) {
    records_.back().emplace_back(key, std::to_string(value));
  }

  /// Writes the file now (no-op when disabled or already flushed).
  void Flush() {
    if (path_.empty() || records_.empty()) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"records\": [\n",
                 bench_name_.c_str());
    for (size_t r = 0; r < records_.size(); ++r) {
      std::fprintf(f, "    {");
      for (size_t i = 0; i < records_[r].size(); ++i) {
        std::fprintf(f, "%s\"%s\": %s", i == 0 ? "" : ", ",
                     records_[r][i].first.c_str(),
                     records_[r][i].second.c_str());
      }
      std::fprintf(f, "}%s\n", r + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    records_.clear();
  }

 private:
  std::string bench_name_;
  std::string path_;
  std::vector<std::vector<std::pair<std::string, std::string>>> records_;
};

/// Prints a header banner for a bench.
inline void Banner(const char* title, const char* paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("================================================================\n");
}

}  // namespace bench
}  // namespace dsketch

#endif  // DSKETCH_BENCH_BENCH_UTIL_H_
