// Shared machinery for the subset-sum error figures (paper Figs. 3-5):
// the three synthetic distributions, random fixed-size item subsets, and
// per-subset error accumulation for each estimator.

#ifndef DSKETCH_BENCH_SUBSET_WORKLOAD_H_
#define DSKETCH_BENCH_SUBSET_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "stats/summary.h"
#include "stream/distributions.h"
#include "util/random.h"

namespace dsketch {
namespace bench {

/// One of the paper's three §7 distributions, scaled to `total` rows.
inline std::vector<int64_t> MakeDistribution(const std::string& name,
                                             size_t n_items, int64_t total) {
  std::vector<int64_t> counts;
  if (name == "weibull_0.32") {
    counts = WeibullCounts(n_items, 5e5, 0.32);
  } else if (name == "geometric_0.03") {
    counts = GeometricCounts(n_items, 0.03);
  } else {
    counts = WeibullCounts(n_items, 5e5, 0.15);  // "weibull_0.15"
  }
  return ScaleCountsToTotal(counts, total);
}

/// A random subset of `size` items with its true sum.
struct Subset {
  std::unordered_set<uint64_t> items;
  double truth = 0.0;
};

/// Draws `how_many` random subsets of `size` items each (paper: random
/// subsets of 100 items).
inline std::vector<Subset> DrawSubsets(const std::vector<int64_t>& counts,
                                       int how_many, size_t size,
                                       uint64_t seed) {
  Rng rng(seed);
  std::vector<Subset> out;
  out.reserve(static_cast<size_t>(how_many));
  for (int s = 0; s < how_many; ++s) {
    Subset subset;
    while (subset.items.size() < size) {
      uint64_t item = rng.NextBounded(counts.size());
      if (subset.items.insert(item).second) {
        subset.truth += static_cast<double>(counts[item]);
      }
    }
    out.push_back(std::move(subset));
  }
  return out;
}

}  // namespace bench
}  // namespace dsketch

#endif  // DSKETCH_BENCH_SUBSET_WORKLOAD_H_
