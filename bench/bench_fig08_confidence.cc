// Figure 8: confidence intervals on the pathological sorted stream.
// Left panel data: true per-epoch counts with the mean 95% CI width.
// Right panel data: CI coverage per epoch — at or above the advertised
// level except in epochs whose subsets hold too few sampled items for the
// central limit theorem.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/subset_sum.h"
#include "core/unbiased_space_saving.h"
#include "epoch_common.h"
#include "stats/summary.h"
#include "stats/welford.h"

namespace dsketch {
namespace {

void Run(int argc, char** argv) {
  const int64_t items = bench::FlagInt(argc, argv, "items", 20000);
  const int64_t total = bench::FlagInt(argc, argv, "rows", 2000000);
  const int64_t m = bench::FlagInt(argc, argv, "bins", 1000);
  const int64_t trials = bench::FlagInt(argc, argv, "trials", 60);
  const int epochs = static_cast<int>(bench::FlagInt(argc, argv, "epochs", 10));

  bench::Banner("Figure 8: CI width and coverage per epoch (sorted stream)",
                "paper Fig. 8 (95% normal CIs from the eq. 5 variance)");

  bench::EpochSetup setup = bench::MakeEpochSetup(items, total, epochs);
  std::printf("items=%lld rows=%zu bins=%lld trials=%lld\n",
              static_cast<long long>(items), setup.rows.size(),
              static_cast<long long>(m), static_cast<long long>(trials));

  std::vector<Welford> ci_width(static_cast<size_t>(epochs));
  std::vector<Welford> items_in_sample(static_cast<size_t>(epochs));
  std::vector<CoverageCounter> coverage(static_cast<size_t>(epochs));

  for (int64_t t = 0; t < trials; ++t) {
    UnbiasedSpaceSaving sketch(static_cast<size_t>(m),
                               static_cast<uint64_t>(140000 + t));
    for (uint64_t item : setup.rows) sketch.Update(item);

    // Single pass accumulating per-epoch estimate and C_S.
    std::vector<double> est(static_cast<size_t>(epochs), 0.0);
    std::vector<uint64_t> cs(static_cast<size_t>(epochs), 0);
    for (const SketchEntry& e : sketch.Entries()) {
      int ep = bench::EpochOf(setup, e.item);
      est[static_cast<size_t>(ep)] += static_cast<double>(e.count);
      ++cs[static_cast<size_t>(ep)];
    }
    double nmin = static_cast<double>(sketch.MinCount());
    for (int e = 0; e < epochs; ++e) {
      SubsetSumEstimate r;
      r.estimate = est[static_cast<size_t>(e)];
      r.items_in_sample = cs[static_cast<size_t>(e)];
      r.variance =
          nmin * nmin *
          static_cast<double>(cs[static_cast<size_t>(e)] > 0
                                  ? cs[static_cast<size_t>(e)]
                                  : 1);
      Interval ci = r.Confidence(0.95);
      ci_width[static_cast<size_t>(e)].Add(ci.Width());
      items_in_sample[static_cast<size_t>(e)].Add(
          static_cast<double>(cs[static_cast<size_t>(e)]));
      coverage[static_cast<size_t>(e)].Add(ci.lo, ci.hi,
                                           setup.epoch_truth[static_cast<size_t>(e)]);
    }
  }

  std::printf("\n%-7s %14s %16s %14s %10s\n", "epoch", "true_count",
              "mean_ci_width", "mean_items", "coverage");
  for (int e = 0; e < epochs; ++e) {
    size_t idx = static_cast<size_t>(e);
    std::printf("%-7d %14.0f %16.1f %14.1f %10.3f\n", e + 1,
                setup.epoch_truth[idx], ci_width[idx].mean(),
                items_in_sample[idx].mean(), coverage[idx].coverage());
  }
  std::printf(
      "\n(paper: coverage >= 0.95 except epochs with ~3-13 sampled items,\n"
      " where the CLT has not kicked in)\n");
}

}  // namespace
}  // namespace dsketch

int main(int argc, char** argv) {
  dsketch::Run(argc, argv);
  return 0;
}
