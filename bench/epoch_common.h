// Shared setup for the sorted-stream epoch experiments (paper Figs. 8-10):
// an ascending-frequency sorted stream (the pathological order for
// Unbiased Space Saving) whose items are partitioned into epochs with an
// equal number of distinct items; each figure queries per-epoch sums.
//
// The paper runs 1e5 items / 1e9 rows / 1e4 bins; defaults here are scaled
// (2e4 items / 2e6 rows / 1e3 bins) with the same rows:bins ratio per
// item, restorable via flags. See EXPERIMENTS.md.

#ifndef DSKETCH_BENCH_EPOCH_COMMON_H_
#define DSKETCH_BENCH_EPOCH_COMMON_H_

#include <cstdint>
#include <vector>

#include "stream/distributions.h"
#include "stream/generators.h"

namespace dsketch {
namespace bench {

/// The sorted-stream workload shared by Figs. 8-10.
struct EpochSetup {
  std::vector<int64_t> counts;      ///< ascending item counts
  std::vector<uint64_t> rows;       ///< ascending-frequency sorted stream
  std::vector<double> epoch_truth;  ///< true sum per epoch
  size_t items_per_epoch = 0;
  int epochs = 0;
};

/// Builds the workload: `items` Weibull-count items scaled to `total`
/// rows, split into `epochs` equal-distinct-count epochs.
inline EpochSetup MakeEpochSetup(int64_t items, int64_t total, int epochs) {
  EpochSetup setup;
  setup.epochs = epochs;
  setup.items_per_epoch = static_cast<size_t>(items) / epochs;
  setup.counts = ScaleCountsToTotal(
      WeibullCounts(static_cast<size_t>(items), 5e5, 0.15), total);
  // Counts are ascending, so the identity stream order is the sorted one.
  setup.rows = SortedStream(setup.counts, /*ascending=*/true);
  setup.epoch_truth.assign(static_cast<size_t>(epochs), 0.0);
  for (size_t i = 0; i < setup.counts.size(); ++i) {
    size_t e = i / setup.items_per_epoch;
    if (e >= static_cast<size_t>(epochs)) e = epochs - 1;
    setup.epoch_truth[e] += static_cast<double>(setup.counts[i]);
  }
  return setup;
}

/// Epoch index of an item id.
inline int EpochOf(const EpochSetup& setup, uint64_t item) {
  size_t e = item / setup.items_per_epoch;
  if (e >= static_cast<size_t>(setup.epochs)) {
    e = static_cast<size_t>(setup.epochs) - 1;
  }
  return static_cast<int>(e);
}

}  // namespace bench
}  // namespace dsketch

#endif  // DSKETCH_BENCH_EPOCH_COMMON_H_
