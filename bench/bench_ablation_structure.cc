// Ablation: the core engine's count-sorted array + range map versus the
// classic Metwally linked-list stream summary (DESIGN.md design choice).
// Both implement the identical update rule; this bench measures update
// throughput on a skewed stream and verifies the engines agree on the
// tie-break-invariant state (deterministic-policy count multisets).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/space_saving_core.h"
#include "core/stream_summary_list.h"
#include "stream/distributions.h"
#include "stream/generators.h"
#include "util/random.h"

namespace dsketch {
namespace {

template <typename Sketch>
double MillionUpdatesPerSecond(Sketch& sketch,
                               const std::vector<uint64_t>& rows,
                               int repeats) {
  auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < repeats; ++r) {
    for (uint64_t item : rows) sketch.Update(item);
  }
  auto end = std::chrono::steady_clock::now();
  double secs = std::chrono::duration<double>(end - start).count();
  return static_cast<double>(rows.size()) * repeats / secs / 1e6;
}

void Run(int argc, char** argv) {
  const int64_t total = bench::FlagInt(argc, argv, "rows", 2000000);
  const int64_t repeats = bench::FlagInt(argc, argv, "repeats", 3);

  bench::Banner(
      "Ablation: array engine vs linked-list stream summary",
      "DESIGN.md ablation (§6.7 O(1) updates; equivalent semantics)");

  auto counts = ScaleCountsToTotal(WeibullCounts(100000, 5e5, 0.3), total);
  Rng rng(1);
  auto rows = PermutedStream(counts, rng);

  // Interpretation caveat: under the default kRandom tie-break the list
  // engine pays O(minimum-group size) per untracked row — picking a
  // uniform bin in a linked list requires walking it (a reservoir pick
  // would walk the whole group; the expected-half walk used is already
  // the cheaper variant), while the array engine indexes a random slot of
  // the minimum range in O(1). The gap below therefore widens on streams
  // whose minimum group is large (many bins tied at the minimum count);
  // it is a property of the data structure, not of the update rule.
  std::printf("(list kRandom tie-break walks the minimum group: O(group);\n"
              " array engine picks a minimum bin in O(1))\n\n");
  std::printf("%-10s %22s %22s\n", "bins", "array_Mupdates/s",
              "list_Mupdates/s");
  for (int64_t m : {100, 1000, 10000}) {
    SpaceSavingCore array_engine(static_cast<size_t>(m),
                                 LabelPolicy::kUnbiased, 2);
    StreamSummaryList list_engine(static_cast<size_t>(m),
                                  LabelPolicy::kUnbiased, 3);
    double array_rate = MillionUpdatesPerSecond(array_engine, rows,
                                                static_cast<int>(repeats));
    double list_rate = MillionUpdatesPerSecond(list_engine, rows,
                                               static_cast<int>(repeats));
    std::printf("%-10lld %22.1f %22.1f\n", static_cast<long long>(m),
                array_rate, list_rate);
  }

  // Semantic agreement: deterministic-policy count multisets coincide
  // regardless of engine and tie-breaking (Misra-Gries projection).
  SpaceSavingCore array_engine(512, LabelPolicy::kDeterministic, 4);
  StreamSummaryList list_engine(512, LabelPolicy::kDeterministic, 5);
  for (uint64_t item : rows) {
    array_engine.Update(item);
    list_engine.Update(item);
  }
  std::vector<int64_t> a_counts, l_counts;
  for (const auto& e : array_engine.Entries()) a_counts.push_back(e.count);
  for (const auto& e : list_engine.Entries()) l_counts.push_back(e.count);
  std::printf("\ndeterministic count multisets identical: %s\n",
              a_counts == l_counts ? "yes" : "NO (bug!)");
}

}  // namespace
}  // namespace dsketch

int main(int argc, char** argv) {
  dsketch::Run(argc, argv);
  return 0;
}
