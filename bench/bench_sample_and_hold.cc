// §5.4 head-to-head: Unbiased Space Saving vs the sample-and-hold family
// at equal memory. The paper's analysis: adaptive sample-and-hold injects
// Geometric(p') noise with variance (1-p')/p'^2 into every bin at every
// rate reduction, while USS's increments are bounded by 1 — so USS should
// dominate. (The paper cites Cohen et al.'s own figures showing sample
// and hold significantly worse than priority sampling.)

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/subset_sum.h"
#include "core/unbiased_space_saving.h"
#include "sampling/sample_and_hold.h"
#include "stats/summary.h"
#include "stream/generators.h"
#include "subset_workload.h"
#include "util/random.h"

namespace dsketch {
namespace {

void Run(int argc, char** argv) {
  const int64_t m = bench::FlagInt(argc, argv, "bins", 100);
  const int64_t items = bench::FlagInt(argc, argv, "items", 1000);
  const int64_t total = bench::FlagInt(argc, argv, "rows", 200000);
  const int64_t trials = bench::FlagInt(argc, argv, "trials", 60);
  const int64_t subsets = bench::FlagInt(argc, argv, "subsets", 100);

  bench::Banner("Sample-and-hold comparison at equal memory",
                "paper §5.4 (USS reduction adds less noise than ASH)");

  for (const char* dist : {"weibull_0.32", "weibull_0.15"}) {
    auto counts = bench::MakeDistribution(dist, static_cast<size_t>(items),
                                          total);
    auto subs = bench::DrawSubsets(counts, static_cast<int>(subsets), 100,
                                   0x5A4);

    ErrorAccumulator uss_err, ash_err, step_err;
    for (int64_t t = 0; t < trials; ++t) {
      Rng rng(static_cast<uint64_t>(210000 + t));
      auto rows = PermutedStream(counts, rng);
      UnbiasedSpaceSaving uss(static_cast<size_t>(m),
                              static_cast<uint64_t>(220000 + t));
      AdaptiveSampleAndHold ash(static_cast<size_t>(m),
                                static_cast<uint64_t>(230000 + t));
      StepSampleAndHold step(static_cast<size_t>(m),
                             static_cast<uint64_t>(240000 + t));
      for (uint64_t item : rows) {
        uss.Update(item);
        ash.Update(item);
        step.Update(item);
      }
      for (const auto& sub : subs) {
        auto pred = [&sub](uint64_t x) { return sub.items.count(x) > 0; };
        uss_err.Add(EstimateSubsetSum(uss, pred).estimate, sub.truth);
        ash_err.Add(ash.EstimateSubset(pred), sub.truth);
        step_err.Add(step.EstimateSubset(pred), sub.truth);
      }
    }

    std::printf("\ndistribution=%s bins=%lld rows=%lld\n", dist,
                static_cast<long long>(m), static_cast<long long>(total));
    std::printf("%-24s %14s %14s\n", "method", "rel_rmse", "vs_uss");
    double base = uss_err.rrmse();
    std::printf("%-24s %14.4f %14.2f\n", "unbiased_space_saving", base, 1.0);
    std::printf("%-24s %14.4f %14.2f\n", "adaptive_sample_hold",
                ash_err.rrmse(), ash_err.rrmse() / base);
    std::printf("%-24s %14.4f %14.2f\n", "step_sample_hold",
                step_err.rrmse(), step_err.rrmse() / base);
  }
}

}  // namespace
}  // namespace dsketch

int main(int argc, char** argv) {
  dsketch::Run(argc, argv);
  return 0;
}
