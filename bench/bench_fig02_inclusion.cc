// Figure 2: empirical item inclusion probabilities of Unbiased Space
// Saving vs the theoretical thresholded-PPS probabilities.
//
// 1000 items with counts ~ rounded Weibull(5e5, 0.15) on a regular
// inverse-CDF grid (scaled to a bench-friendly total; the shape — which
// drives inclusion — is preserved), sketch of m bins, exchangeable stream.
// Left panel data: inclusion probability by item index. Right panel data:
// empirical vs theoretical scatter. Also prints the mean absolute
// deviation and the max deviation — the paper's claim is that the curves
// coincide.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/unbiased_space_saving.h"
#include "sampling/pps.h"
#include "stream/distributions.h"
#include "stream/generators.h"
#include "util/random.h"

namespace dsketch {
namespace {

void Run(int argc, char** argv) {
  const int64_t n_items = bench::FlagInt(argc, argv, "items", 1000);
  const int64_t m = bench::FlagInt(argc, argv, "bins", 100);
  const int64_t total = bench::FlagInt(argc, argv, "rows", 400000);
  const int64_t trials = bench::FlagInt(argc, argv, "trials", 200);

  bench::Banner(
      "Figure 2: inclusion probabilities match a PPS sample",
      "paper Fig. 2 (Weibull(5e5,0.15) counts, theoretical vs observed)");

  auto counts = ScaleCountsToTotal(
      WeibullCounts(static_cast<size_t>(n_items), 5e5, 0.15), total);
  std::vector<double> weights(counts.begin(), counts.end());
  auto theoretical =
      ThresholdedPpsProbabilities(weights, static_cast<size_t>(m));

  std::vector<int64_t> included(static_cast<size_t>(n_items), 0);
  for (int64_t t = 0; t < trials; ++t) {
    Rng rng(static_cast<uint64_t>(1000 + t));
    auto rows = PermutedStream(counts, rng);
    UnbiasedSpaceSaving sketch(static_cast<size_t>(m),
                               static_cast<uint64_t>(5000 + t));
    for (uint64_t item : rows) sketch.Update(item);
    for (int64_t i = 0; i < n_items; ++i) {
      if (sketch.Contains(static_cast<uint64_t>(i))) ++included[static_cast<size_t>(i)];
    }
  }

  std::printf("%-8s %12s %12s %12s\n", "item", "count", "pps_pi",
              "observed_pi");
  double mad = 0.0, max_dev = 0.0;
  int measured = 0;
  for (int64_t i = 0; i < n_items; ++i) {
    double obs = static_cast<double>(included[static_cast<size_t>(i)]) /
                 static_cast<double>(trials);
    double theo = theoretical[static_cast<size_t>(i)];
    if (counts[static_cast<size_t>(i)] > 0) {
      mad += std::abs(obs - theo);
      max_dev = std::max(max_dev, std::abs(obs - theo));
      ++measured;
    }
    // Print the transition region (paper plots items 900-1000) plus a
    // coarse sample of the tail.
    if (i % 100 == 0 || (i >= n_items - 120 && i % 5 == 0)) {
      std::printf("%-8lld %12lld %12.4f %12.4f\n", static_cast<long long>(i),
                  static_cast<long long>(counts[static_cast<size_t>(i)]), theo,
                  obs);
    }
  }
  std::printf("\nitems_measured=%d  mean_abs_dev=%.4f  max_abs_dev=%.4f\n",
              measured, mad / measured, max_dev);
  std::printf("(paper: observed inclusion ~ theoretical PPS inclusion)\n");
}

}  // namespace
}  // namespace dsketch

int main(int argc, char** argv) {
  dsketch::Run(argc, argv);
  return 0;
}
