// Related-work baseline (paper §2, §7): prior ad-counting systems used
// CountMin and Lossy Counting for historical counts. Both are *biased* —
// CountMin overestimates (hash collisions), Lossy Counting underestimates
// (decrement schedule) — and the bias accumulates when summing a subset
// of per-item queries (paper §3.2: "further aggregation on the sketch can
// lead to large errors when bias accumulates"). This bench quantifies
// that accumulation against Unbiased Space Saving at comparable memory.
//
// Memory accounting: USS with m bins stores m (item,count) pairs = 2m
// words; CountMin with width w and depth d stores w*d counters; Lossy
// Counting stores its live counters. All are matched to ~2m words.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/subset_sum.h"
#include "core/unbiased_space_saving.h"
#include "frequency/count_min.h"
#include "frequency/lossy_counting.h"
#include "stats/summary.h"
#include "stream/generators.h"
#include "subset_workload.h"
#include "util/random.h"

namespace dsketch {
namespace {

void Run(int argc, char** argv) {
  const int64_t m = bench::FlagInt(argc, argv, "bins", 200);
  const int64_t items = bench::FlagInt(argc, argv, "items", 2000);
  const int64_t total = bench::FlagInt(argc, argv, "rows", 200000);
  const int64_t trials = bench::FlagInt(argc, argv, "trials", 40);
  const int64_t subsets = bench::FlagInt(argc, argv, "subsets", 100);

  bench::Banner(
      "Baseline: CountMin and Lossy Counting bias accumulation",
      "paper §2/§3.2 (biased counting sketches vs USS on subset sums)");

  auto counts = bench::MakeDistribution("weibull_0.32",
                                        static_cast<size_t>(items), total);
  auto subs = bench::DrawSubsets(counts, static_cast<int>(subsets), 100,
                                 0xC0DE);

  // Memory matching: USS = 2m words; CountMin = 4 rows x m/2 = 2m words;
  // Lossy Counting period chosen so live counters ~ m (2m words).
  const size_t cm_width = static_cast<size_t>(m) / 2;
  const size_t cm_depth = 4;

  ErrorAccumulator uss_err, cm_err, cm_cons_err, lc_err;
  Welford lc_size;
  for (int64_t t = 0; t < trials; ++t) {
    Rng rng(static_cast<uint64_t>(900000 + t));
    auto rows = PermutedStream(counts, rng);
    UnbiasedSpaceSaving uss(static_cast<size_t>(m),
                            static_cast<uint64_t>(910000 + t));
    CountMin cm(cm_width, cm_depth, static_cast<uint64_t>(920000 + t),
                /*conservative=*/false);
    CountMin cm_cons(cm_width, cm_depth, static_cast<uint64_t>(920000 + t),
                     /*conservative=*/true);
    LossyCounting lc(static_cast<size_t>(m));
    for (uint64_t item : rows) {
      uss.Update(item);
      cm.Update(item);
      cm_cons.Update(item);
      lc.Update(item);
    }
    lc_size.Add(static_cast<double>(lc.size()));

    auto uss_entries = uss.Entries();
    for (size_t s = 0; s < subs.size(); ++s) {
      const auto& subset = subs[s].items;
      double uss_est = 0, cm_est = 0, cm_cons_est = 0, lc_est = 0;
      for (const auto& e : uss_entries) {
        if (subset.count(e.item)) uss_est += static_cast<double>(e.count);
      }
      // CountMin / Lossy Counting answer subset sums by summing point
      // queries over the subset's members — biases add up.
      for (uint64_t item : subset) {
        cm_est += static_cast<double>(cm.EstimateCount(item));
        cm_cons_est += static_cast<double>(cm_cons.EstimateCount(item));
        lc_est += static_cast<double>(lc.EstimateCount(item));
      }
      uss_err.Add(uss_est, subs[s].truth);
      cm_err.Add(cm_est, subs[s].truth);
      cm_cons_err.Add(cm_cons_est, subs[s].truth);
      lc_err.Add(lc_est, subs[s].truth);
    }
  }

  std::printf("%-26s %12s %14s %12s\n", "method", "rel_bias", "rel_rmse",
              "vs_uss");
  double base = uss_err.rrmse();
  auto row = [&](const char* name, const ErrorAccumulator& acc) {
    std::printf("%-26s %11.2f%% %14.4f %12.1f\n", name,
                100.0 * acc.bias() / acc.mean_truth(), acc.rrmse(),
                acc.rrmse() / base);
  };
  row("unbiased_space_saving", uss_err);
  row("countmin", cm_err);
  row("countmin_conservative", cm_cons_err);
  row("lossy_counting", lc_err);
  std::printf("\nlossy counting live counters: %.0f (period %lld)\n",
              lc_size.mean(), static_cast<long long>(m));
  std::printf(
      "(expected: CountMin biased up, Lossy Counting biased down; the\n"
      " bias dominates subset-sum error while USS stays centered)\n");
}

}  // namespace
}  // namespace dsketch

int main(int argc, char** argv) {
  dsketch::Run(argc, argv);
  return 0;
}
