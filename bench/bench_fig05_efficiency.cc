// Figure 5: per-subset relative MSE of Unbiased Space Saving vs priority
// sampling (scatter), plus the relative-efficiency distribution
// Var(priority) / Var(USS). The paper's surprising result: the ratio
// concentrates around or above 1 — the disaggregated sketch matches or
// beats the pre-aggregated gold standard.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/unbiased_space_saving.h"
#include "sampling/priority_sampling.h"
#include "stats/summary.h"
#include "stream/generators.h"
#include "subset_workload.h"
#include "util/random.h"

namespace dsketch {
namespace {

void Run(int argc, char** argv) {
  const int64_t m = bench::FlagInt(argc, argv, "bins", 100);
  const int64_t items = bench::FlagInt(argc, argv, "items", 1000);
  const int64_t total = bench::FlagInt(argc, argv, "rows", 300000);
  const int64_t trials = bench::FlagInt(argc, argv, "trials", 60);
  const int64_t subsets = bench::FlagInt(argc, argv, "subsets", 120);

  bench::Banner(
      "Figure 5: relative MSE scatter and relative efficiency",
      "paper Fig. 5 (Var(priority)/Var(USS) concentrates near/above 1)");

  auto counts = bench::MakeDistribution("weibull_0.32",
                                        static_cast<size_t>(items), total);
  auto subs = bench::DrawSubsets(counts, static_cast<int>(subsets), 100,
                                 0xF05);

  std::vector<ErrorAccumulator> uss_err(subs.size()), pri_err(subs.size());
  for (int64_t t = 0; t < trials; ++t) {
    Rng rng(static_cast<uint64_t>(80000 + t));
    auto rows = PermutedStream(counts, rng);
    UnbiasedSpaceSaving uss(static_cast<size_t>(m),
                            static_cast<uint64_t>(90000 + t));
    for (uint64_t item : rows) uss.Update(item);
    PrioritySampler pri(static_cast<size_t>(m),
                        static_cast<uint64_t>(95000 + t));
    for (size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] > 0) pri.Add(i, static_cast<double>(counts[i]));
    }

    auto uss_entries = uss.Entries();
    auto pri_sample = pri.Sample();
    for (size_t s = 0; s < subs.size(); ++s) {
      const auto& subset = subs[s].items;
      double uss_est = 0, pri_est = 0;
      for (const auto& e : uss_entries) {
        if (subset.count(e.item)) uss_est += static_cast<double>(e.count);
      }
      for (const auto& e : pri_sample) {
        if (subset.count(e.item)) pri_est += e.weight;
      }
      uss_err[s].Add(uss_est, subs[s].truth);
      pri_err[s].Add(pri_est, subs[s].truth);
    }
  }

  std::printf("%-8s %14s %14s %14s %14s\n", "subset", "true_count",
              "uss_rel_mse", "pri_rel_mse", "efficiency");
  std::vector<double> ratios;
  for (size_t s = 0; s < subs.size(); ++s) {
    if (subs[s].truth <= 0) continue;
    double denom = subs[s].truth * subs[s].truth;
    double uss_rel = uss_err[s].mse() / denom;
    double pri_rel = pri_err[s].mse() / denom;
    double ratio = uss_err[s].mse() > 0 ? pri_err[s].mse() / uss_err[s].mse()
                                        : 1.0;
    ratios.push_back(ratio);
    if (s % 10 == 0) {
      std::printf("%-8zu %14.0f %14.5f %14.5f %14.3f\n", s, subs[s].truth,
                  uss_rel, pri_rel, ratio);
    }
  }

  std::printf("\nrelative efficiency Var(priority)/Var(USS):\n");
  std::printf("  q10=%.3f  q25=%.3f  median=%.3f  q75=%.3f  q90=%.3f\n",
              Quantile(ratios, 0.10), Quantile(ratios, 0.25),
              Quantile(ratios, 0.50), Quantile(ratios, 0.75),
              Quantile(ratios, 0.90));
  std::printf("(paper: ratio ~0.9-1.5 with median slightly above 1)\n");
}

}  // namespace
}  // namespace dsketch

int main(int argc, char** argv) {
  dsketch::Run(argc, argv);
  return 0;
}
