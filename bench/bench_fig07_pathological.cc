// Figure 7: the two-half pathological stream. Items 1..n/2 appear only in
// the first half of the stream, the rest only in the second half (e.g.
// data partitioned by hashed user id and processed block by block).
//
// Left panels: inclusion probabilities of first-half items — Unbiased
// Space Saving still behaves like a PPS sample, while Deterministic Space
// Saving keeps only the frequent first-half items. Right panel: relative
// error for per-item queries on first-half items.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/deterministic_space_saving.h"
#include "core/unbiased_space_saving.h"
#include "sampling/pps.h"
#include "stats/summary.h"
#include "stream/distributions.h"
#include "stream/generators.h"
#include "util/random.h"

namespace dsketch {
namespace {

void Run(int argc, char** argv) {
  const int64_t half_items = bench::FlagInt(argc, argv, "items", 1000);
  const int64_t m = bench::FlagInt(argc, argv, "bins", 100);
  const int64_t rows_per_half = bench::FlagInt(argc, argv, "rows", 200000);
  const int64_t trials = bench::FlagInt(argc, argv, "trials", 150);

  bench::Banner(
      "Figure 7: two-half pathological stream",
      "paper Fig. 7 (USS ~ PPS; DSS forgets the first half's tail)");

  auto half_counts = ScaleCountsToTotal(
      WeibullCounts(static_cast<size_t>(half_items), 5e5, 0.3),
      rows_per_half);

  std::vector<int64_t> uss_inc(static_cast<size_t>(half_items), 0);
  std::vector<int64_t> dss_inc(static_cast<size_t>(half_items), 0);
  std::vector<ErrorAccumulator> uss_err(static_cast<size_t>(half_items));
  std::vector<ErrorAccumulator> dss_err(static_cast<size_t>(half_items));

  for (int64_t t = 0; t < trials; ++t) {
    Rng rng(static_cast<uint64_t>(110000 + t));
    auto rows = TwoHalfStream(half_counts, half_counts, rng);
    UnbiasedSpaceSaving uss(static_cast<size_t>(m),
                            static_cast<uint64_t>(120000 + t));
    DeterministicSpaceSaving dss(static_cast<size_t>(m),
                                 static_cast<uint64_t>(130000 + t));
    for (uint64_t item : rows) {
      uss.Update(item);
      dss.Update(item);
    }
    for (int64_t i = 0; i < half_items; ++i) {
      size_t idx = static_cast<size_t>(i);
      if (uss.Contains(idx)) ++uss_inc[idx];
      if (dss.Contains(idx)) ++dss_inc[idx];
      uss_err[idx].Add(static_cast<double>(uss.EstimateCount(idx)),
                       static_cast<double>(half_counts[idx]));
      dss_err[idx].Add(static_cast<double>(dss.EstimateCount(idx)),
                       static_cast<double>(half_counts[idx]));
    }
  }

  // Theoretical PPS curve for first-half items within the *full* stream.
  std::vector<double> weights;
  weights.reserve(2 * half_counts.size());
  for (int64_t c : half_counts) weights.push_back(static_cast<double>(c));
  for (int64_t c : half_counts) weights.push_back(static_cast<double>(c));
  auto pps = ThresholdedPpsProbabilities(weights, static_cast<size_t>(m));

  std::printf("%-8s %10s %10s %12s %12s\n", "item", "count", "pps_pi",
              "uss_incl", "dss_incl");
  for (int64_t i = 0; i < half_items; i += half_items / 25 > 0 ? half_items / 25 : 1) {
    size_t idx = static_cast<size_t>(i);
    std::printf("%-8lld %10lld %10.4f %12.4f %12.4f\n",
                static_cast<long long>(i),
                static_cast<long long>(half_counts[idx]), pps[idx],
                static_cast<double>(uss_inc[idx]) / static_cast<double>(trials),
                static_cast<double>(dss_inc[idx]) / static_cast<double>(trials));
  }

  // Relative error vs true count for first-half items (smoothed).
  double min_c = 1e300, max_c = 0;
  for (int64_t c : half_counts) {
    if (c > 0) {
      min_c = std::min(min_c, static_cast<double>(c));
      max_c = std::max(max_c, static_cast<double>(c));
    }
  }
  LogBucketCurve uss_curve(min_c, max_c + 1, 7), dss_curve(min_c, max_c + 1, 7);
  for (size_t i = 0; i < half_counts.size(); ++i) {
    if (half_counts[i] <= 0) continue;
    uss_curve.Add(static_cast<double>(half_counts[i]), uss_err[i].rrmse());
    dss_curve.Add(static_cast<double>(half_counts[i]), dss_err[i].rrmse());
  }
  std::printf("\nper-item relative error on first-half items:\n");
  std::printf("%-16s %14s %16s\n", "true_count", "uss_rel_err",
              "dss_rel_err");
  auto up = uss_curve.Points();
  auto dp = dss_curve.Points();
  for (size_t b = 0; b < up.size() && b < dp.size(); ++b) {
    std::printf("%-16.0f %14.3f %16.3f\n", up[b].x_center, up[b].mean_y,
                dp[b].mean_y);
  }
  std::printf("\n(paper: DSS error explodes on the first half's tail; USS"
              " keeps PPS-like inclusion and bounded error)\n");
}

}  // namespace
}  // namespace dsketch

int main(int argc, char** argv) {
  dsketch::Run(argc, argv);
  return 0;
}
